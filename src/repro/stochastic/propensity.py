"""Compilation of SBML models into fast propensity evaluators.

The stochastic simulators never interpret kinetic-law ASTs in their inner
loop.  :class:`CompiledModel` turns a :class:`repro.sbml.Model` into:

* a species index (name -> column in the state vector),
* per-reaction state-change vectors (with boundary/input species frozen),
* per-reaction compiled propensity callables, and
* a reaction dependency graph (used by the Gibson–Bruck simulator to only
  recompute propensities that could have changed).

The same compiled object also serves the deterministic ODE integrator, which
interprets the propensities as macroscopic rates.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..errors import PropensityError, SimulationError
from ..sbml.ast import compile_function
from ..sbml.model import Model

__all__ = ["CompiledModel", "compile_model"]


class CompiledModel:
    """A :class:`repro.sbml.Model` compiled for simulation.

    Parameters
    ----------
    model:
        The reaction-network model to compile.
    parameter_overrides:
        Optional ``{parameter_id: value}`` replacing global parameter values
        at compile time — used by sweeps that vary, e.g., Hill thresholds
        without mutating the source model.
    """

    def __init__(
        self,
        model: Model,
        parameter_overrides: Optional[Dict[str, float]] = None,
    ):
        self.model = model
        self.species: List[str] = model.species_ids()
        self.index: Dict[str, int] = {sid: i for i, sid in enumerate(self.species)}
        self.reaction_ids: List[str] = model.reaction_ids()
        self.n_species = len(self.species)
        self.n_reactions = len(self.reaction_ids)

        if self.n_reactions == 0:
            raise SimulationError(f"model {model.sid!r} has no reactions to simulate")

        self.boundary_mask = np.array(
            [
                model.species[sid].boundary_condition or model.species[sid].constant
                for sid in self.species
            ],
            dtype=bool,
        )
        self.initial_state = np.array(
            [float(model.species[sid].initial_amount) for sid in self.species],
            dtype=float,
        )

        constants = model.parameter_values()
        if parameter_overrides:
            unknown = set(parameter_overrides) - set(constants)
            if unknown:
                raise PropensityError(
                    f"parameter overrides refer to unknown parameters: {sorted(unknown)}",
                )
            constants.update(parameter_overrides)
        self.constants: Dict[str, float] = constants

        self._propensity_fns: List[Callable[..., float]] = []
        self._propensity_args: List[Tuple[int, ...]] = []
        self._change_indices: List[np.ndarray] = []
        self._change_deltas: List[np.ndarray] = []
        self._law_species: List[set] = []

        for rid in self.reaction_ids:
            reaction = model.reactions[rid]
            if reaction.kinetic_law is None:
                raise PropensityError(f"reaction {rid!r} has no kinetic law")
            law = reaction.kinetic_law
            local_constants = dict(constants)
            local_constants.update(law.local_parameters)
            law_symbols = law.math.symbols()
            species_args = [s for s in law_symbols if s in self.index]
            non_species = [
                s
                for s in law_symbols
                if s not in self.index and s not in local_constants and s != "time"
            ]
            if non_species:
                raise PropensityError(
                    f"kinetic law of {rid!r} references unknown symbols {non_species}",
                )
            fn = compile_function(law.math, species_args, local_constants)
            self._propensity_fns.append(fn)
            self._propensity_args.append(tuple(self.index[s] for s in species_args))
            self._law_species.append(set(species_args))

            delta = reaction.net_stoichiometry()
            indices = []
            deltas = []
            for sid, value in delta.items():
                column = self.index[sid]
                if self.boundary_mask[column]:
                    # Boundary species are clamped by the experiment driver;
                    # reactions may read them but never change them.
                    continue
                indices.append(column)
                deltas.append(float(value))
            self._change_indices.append(np.array(indices, dtype=int))
            self._change_deltas.append(np.array(deltas, dtype=float))

        self._dependents = self._build_dependency_graph()

    # -- dependency graph -----------------------------------------------------
    def _build_dependency_graph(self) -> List[List[int]]:
        changed_by: List[set] = []
        for r in range(self.n_reactions):
            changed_by.append({self.species[i] for i in self._change_indices[r]})
        dependents: List[List[int]] = []
        for r in range(self.n_reactions):
            deps = []
            for j in range(self.n_reactions):
                if j == r or (self._law_species[j] & changed_by[r]):
                    deps.append(j)
            dependents.append(deps)
        return dependents

    def dependents(self, reaction_index: int) -> List[int]:
        """Indices of reactions whose propensity may change when ``reaction_index`` fires."""
        return self._dependents[reaction_index]

    # -- state helpers --------------------------------------------------------
    def state_from_dict(self, amounts: Dict[str, float]) -> np.ndarray:
        """Build a state vector from a ``{species: amount}`` mapping.

        Species not mentioned keep their model initial amount.
        """
        state = self.initial_state.copy()
        for sid, value in amounts.items():
            if sid not in self.index:
                raise SimulationError(f"unknown species {sid!r} in initial state")
            state[self.index[sid]] = float(value)
        return state

    def clamp(self, state: np.ndarray, settings: Dict[str, float]) -> None:
        """Apply an input event: overwrite the clamped species in place."""
        for sid, value in settings.items():
            if sid not in self.index:
                raise SimulationError(f"input event drives unknown species {sid!r}")
            state[self.index[sid]] = float(value)

    # -- propensities ---------------------------------------------------------
    def propensity(self, reaction_index: int, state: np.ndarray) -> float:
        """Propensity of one reaction in the given state (clamped at zero)."""
        args = self._propensity_args[reaction_index]
        value = self._propensity_fns[reaction_index](*(state[i] for i in args))
        if value != value:  # NaN guard
            raise PropensityError(
                f"propensity of reaction {self.reaction_ids[reaction_index]!r} is NaN",
            )
        return value if value > 0.0 else 0.0

    def propensities(self, state: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Vector of all reaction propensities in the given state."""
        if out is None:
            out = np.empty(self.n_reactions, dtype=float)
        for r in range(self.n_reactions):
            out[r] = self.propensity(r, state)
        return out

    def apply(self, reaction_index: int, state: np.ndarray) -> None:
        """Fire a reaction once: update ``state`` in place."""
        indices = self._change_indices[reaction_index]
        if indices.size:
            state[indices] += self._change_deltas[reaction_index]

    def rates(self, state: np.ndarray) -> np.ndarray:
        """Net rate of change of every species (ODE right-hand side)."""
        derivative = np.zeros(self.n_species, dtype=float)
        for r in range(self.n_reactions):
            a = self.propensity(r, state)
            if a == 0.0:
                continue
            indices = self._change_indices[r]
            if indices.size:
                derivative[indices] += a * self._change_deltas[r]
        return derivative

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"CompiledModel({self.model.sid!r}, species={self.n_species}, "
            f"reactions={self.n_reactions})"
        )


def compile_model(
    model,
    parameter_overrides: Optional[Dict[str, float]] = None,
) -> CompiledModel:
    """Compile ``model`` unless it is already a :class:`CompiledModel`."""
    if isinstance(model, CompiledModel):
        if parameter_overrides:
            return CompiledModel(model.model, parameter_overrides)
        return model
    return CompiledModel(model, parameter_overrides)
