"""Uniform-grid sampling shared by all simulators.

Stochastic trajectories are piecewise-constant between reaction events.  The
logic-analysis algorithm, like D-VASim's data logger, works on samples taken
at a fixed interval, so every simulator fills a :class:`SampleRecorder` with
the zero-order-hold value of the state at each grid point.
"""

from __future__ import annotations


import numpy as np

from ..errors import SimulationError

__all__ = ["SampleRecorder", "make_sample_times"]


def make_sample_times(t_end: float, sample_interval: float, t_start: float = 0.0) -> np.ndarray:
    """Sample grid ``t_start, t_start+dt, ..., <= t_end`` (inclusive of t_end)."""
    if t_end <= t_start:
        raise SimulationError("t_end must be greater than t_start")
    if sample_interval <= 0:
        raise SimulationError("sample_interval must be positive")
    count = int(np.floor((t_end - t_start) / sample_interval + 1e-9)) + 1
    times = t_start + sample_interval * np.arange(count)
    # Guard against floating-point creep past t_end.
    return times[times <= t_end + 1e-9 * max(1.0, abs(t_end))]


class SampleRecorder:
    """Fills a (samples x species) matrix with zero-order-hold state values."""

    def __init__(self, sample_times: np.ndarray, n_species: int):
        self.sample_times = np.asarray(sample_times, dtype=float)
        self.data = np.zeros((len(self.sample_times), n_species), dtype=float)
        self._cursor = 0

    @property
    def complete(self) -> bool:
        """True once every sample row has been filled."""
        return self._cursor >= len(self.sample_times)

    def fill_before(self, t_limit: float, state: np.ndarray) -> None:
        """Fill all unfilled samples with time strictly less than ``t_limit``."""
        end = int(np.searchsorted(self.sample_times, t_limit, side="left"))
        if end > self._cursor:
            self.data[self._cursor:end] = state
            self._cursor = end

    def fill_through(self, t_limit: float, state: np.ndarray) -> None:
        """Fill all unfilled samples with time less than or equal to ``t_limit``."""
        end = int(np.searchsorted(self.sample_times, t_limit, side="right"))
        if end > self._cursor:
            self.data[self._cursor:end] = state
            self._cursor = end

    def finish(self, state: np.ndarray) -> None:
        """Fill any remaining samples with the final state."""
        if self._cursor < len(self.sample_times):
            self.data[self._cursor:] = state
            self._cursor = len(self.sample_times)
