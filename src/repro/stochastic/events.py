"""Input clamping schedules.

D-VASim lets the user interactively set the amount of the input species while
the stochastic simulation runs (the "virtual laboratory" workflow).  The
equivalent batch mechanism here is an :class:`InputSchedule`: a sorted list of
:class:`InputEvent` objects, each setting one or more (boundary) species to a
fixed amount at a given time.  Every simulator honours the schedule by
clamping those species at segment boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence

import numpy as np

from ..errors import ExperimentError

__all__ = ["InputEvent", "InputSchedule"]


@dataclass(frozen=True)
class InputEvent:
    """Set the given species to the given amounts at ``time``."""

    time: float
    settings: Mapping[str, float]

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ExperimentError("input events cannot occur at negative times")
        settings = dict(self.settings)
        for species, amount in settings.items():
            if amount < 0:
                raise ExperimentError(
                    f"input event at t={self.time:g} sets {species!r} to a negative amount",
                )
        object.__setattr__(self, "settings", settings)


class InputSchedule:
    """An ordered collection of :class:`InputEvent` objects.

    The schedule also remembers which species it drives, so the experiment
    driver can mark them as boundary species and the analyzer can recover the
    *applied* digital input value at any sample time.
    """

    def __init__(self, events: Sequence[InputEvent] = ()):
        self._events: List[InputEvent] = sorted(events, key=lambda e: e.time)

    # -- construction ---------------------------------------------------------
    def add(self, time: float, settings: Mapping[str, float]) -> "InputSchedule":
        """Add an event (returns self so calls can be chained)."""
        self._events.append(InputEvent(time, settings))
        self._events.sort(key=lambda e: e.time)
        return self

    def merge(self, other: "InputSchedule") -> "InputSchedule":
        """A new schedule containing the events of both schedules."""
        return InputSchedule(self._events + list(other))

    # -- queries --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[InputEvent]:
        return iter(self._events)

    def __getitem__(self, index: int) -> InputEvent:
        return self._events[index]

    @property
    def species(self) -> List[str]:
        """All species driven by at least one event, in first-use order."""
        seen: List[str] = []
        for event in self._events:
            for sid in event.settings:
                if sid not in seen:
                    seen.append(sid)
        return seen

    def events_between(self, t_start: float, t_end: float) -> List[InputEvent]:
        """Events with ``t_start <= time < t_end``."""
        return [e for e in self._events if t_start <= e.time < t_end]

    def segment_boundaries(self, t_end: float) -> List[float]:
        """Event times within ``[0, t_end)``, plus ``t_end`` itself."""
        times = sorted({e.time for e in self._events if e.time < t_end})
        return times + [t_end]

    def value_at(self, species: str, time: float, default: float = 0.0) -> float:
        """The amount most recently assigned to ``species`` at ``time``."""
        value = default
        for event in self._events:
            if event.time > time:
                break
            if species in event.settings:
                value = float(event.settings[species])
        return value

    def applied_values(
        self,
        species: Sequence[str],
        times: np.ndarray,
        defaults: Optional[Mapping[str, float]] = None,
    ) -> Dict[str, np.ndarray]:
        """Vectorized :meth:`value_at` for many sample times.

        Returns, for each requested species, the amount the schedule holds it
        at for every sample time.  The logic analyzer uses this to know which
        input combination was applied at each sample (the paper logs the
        applied inputs alongside the simulated traces).
        """
        times = np.asarray(times, dtype=float)
        defaults = dict(defaults or {})
        result: Dict[str, np.ndarray] = {}
        for sid in species:
            changes_t = [0.0]
            changes_v = [float(defaults.get(sid, 0.0))]
            for event in self._events:
                if sid in event.settings:
                    changes_t.append(event.time)
                    changes_v.append(float(event.settings[sid]))
            changes_t_arr = np.asarray(changes_t)
            changes_v_arr = np.asarray(changes_v)
            indices = np.searchsorted(changes_t_arr, times, side="right") - 1
            indices = np.clip(indices, 0, len(changes_t_arr) - 1)
            result[sid] = changes_v_arr[indices]
        return result

    # -- factory helpers ------------------------------------------------------
    @classmethod
    def from_combinations(
        cls,
        input_species: Sequence[str],
        combinations: Sequence[Sequence[int]],
        hold_time: float,
        high_amount: float,
        low_amount: float = 0.0,
        start_time: float = 0.0,
    ) -> "InputSchedule":
        """Clamp ``input_species`` through a sequence of digital combinations.

        Each combination is held for ``hold_time`` time units; digital 1 maps
        to ``high_amount`` molecules and digital 0 to ``low_amount``.  This is
        the schedule shape used throughout the paper: "each input combination
        is applied for at least the propagation delay".
        """
        if hold_time <= 0:
            raise ExperimentError("hold_time must be positive")
        if high_amount <= low_amount:
            raise ExperimentError("high_amount must exceed low_amount")
        schedule = cls()
        time = float(start_time)
        for combination in combinations:
            if len(combination) != len(input_species):
                raise ExperimentError(
                    f"combination {tuple(combination)} does not match the "
                    f"{len(input_species)} input species",
                )
            settings = {
                sid: (high_amount if bit else low_amount)
                for sid, bit in zip(input_species, combination)
            }
            schedule.add(time, settings)
            time += hold_time
        return schedule

    def total_duration(self) -> float:
        """Time of the last event (the schedule's natural minimum duration)."""
        if not self._events:
            return 0.0
        return self._events[-1].time

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"InputSchedule({len(self._events)} events, species={self.species})"
