"""Batch-lockstep direct-method SSA: B replicates stepped together.

One worker advances ``B`` replicates of the *same* ``(model, overrides,
schedule, t_end)`` configuration in lockstep: every step evaluates the whole
``[live, n_reactions]`` propensity matrix with one
:meth:`~repro.stochastic.propensity.CompiledModel.propensities_batch` call and
one axis-1 ``cumsum``, instead of ``B`` separate kernel invocations.  Rows
whose segment has ended (or whose total propensity hit zero) go inactive and
rejoin at the next input-schedule boundary, exactly as the serial simulator's
inner loop breaks and resumes.

Bit-identity contract
---------------------
Each replicate is **bit-identical to its serial single-replicate run** with
the same seed (:class:`~repro.stochastic.ssa.DirectMethodSimulator`):

* every replicate owns its private :class:`numpy.random.Generator`, and the
  two draws per step (exponential waiting time, uniform reaction selector)
  happen in the same per-row order as serially — batching never reorders or
  shares a stream;
* ``propensities_batch`` is bit-identical per row to the scalar kernel (the
  PR 4 parity contract), and the per-row ``total`` uses the same contiguous
  1-D pairwise ``.sum()`` the serial loop uses;
* ``cumsum`` along axis 1 accumulates each row sequentially, so the
  ``searchsorted`` selection (including the ulp-overshoot clamp) picks the
  same reaction the serial scan picks.

Deactivated rows stop drawing, so draw order within a row never changes no
matter which other rows are still live.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import SimulationError
from .events import InputSchedule
from .propensity import compile_model
from .sampling import SampleRecorder, make_sample_times
from .trajectory import Trajectory

__all__ = ["simulate_ssa_batch"]


def simulate_ssa_batch(
    model,
    t_end: float,
    seeds: Sequence,
    sample_interval: float = 1.0,
    schedule: Optional[InputSchedule] = None,
    initial_state: Optional[Dict[str, float]] = None,
    record_species: Optional[Sequence[str]] = None,
    parameter_overrides: Optional[Dict[str, float]] = None,
    max_events: int = 50_000_000,
) -> List[Trajectory]:
    """Run ``len(seeds)`` lockstep SSA replicates; one trajectory per seed.

    Accepts the same per-run keywords as :func:`~repro.stochastic.ssa.simulate_ssa`
    (every replicate shares them) plus ``seeds`` — one seed/generator per
    replicate, typically a slice of :func:`~repro.stochastic.rng.fan_out_seeds`.
    The returned trajectories share one sample-time array object (lockstep
    replicates share the grid), which is what lets the binary transport encode
    the grid once per batch.
    """
    compiled = compile_model(model, parameter_overrides)
    schedule = schedule or InputSchedule()
    generators = [np.random.default_rng(seed) if not isinstance(seed, np.random.Generator)
                  else seed for seed in seeds]
    n_rows = len(generators)
    if n_rows == 0:
        return []

    base_state = compiled.initial_state.copy()
    if initial_state:
        base_state = compiled.state_from_dict(
            {**compiled.model.initial_state(), **initial_state},
        )

    sample_times = make_sample_times(t_end, sample_interval)
    recorders = [SampleRecorder(sample_times, compiled.n_species) for _ in range(n_rows)]

    n_reactions = compiled.n_reactions
    states = np.tile(base_state, (n_rows, 1))
    prop_matrix = np.empty((n_rows, n_reactions), dtype=float)
    cum_matrix = np.empty((n_rows, n_reactions), dtype=float)
    t = np.zeros(n_rows)
    events_fired = [0] * n_rows

    boundaries = schedule.segment_boundaries(t_end)
    segment_start = 0.0
    for segment_end in boundaries:
        # Apply every event scheduled at the start of this segment (plus the
        # same strictly-inside guard the serial loop has) to every row.
        for event in schedule.events_between(segment_start, segment_start + 1e-12):
            for row in range(n_rows):
                compiled.clamp(states[row], event.settings)
        for event in schedule.events_between(segment_start + 1e-12, segment_end):
            for row in range(n_rows):
                compiled.clamp(states[row], event.settings)

        t[:] = segment_start
        # Every row re-enters the segment live; rows drop out exactly where
        # the serial inner loop would `break` (zero total propensity, or the
        # next waiting time overshooting the segment).  Degenerate segments
        # (an event at t=0 yields a [0, 0) segment) never enter the serial
        # `while t < segment_end` loop, so they must not draw here either.
        live = list(range(n_rows)) if segment_start < segment_end else []
        while live:
            n_live = len(live)
            live_idx = np.asarray(live, dtype=np.intp)
            propensities = prop_matrix[:n_live]
            compiled.propensities_batch(states[live_idx], out=propensities)
            # One sequential cumulative sum per row, vectorised across rows;
            # axis-1 cumsum accumulates in the same order as the serial 1-D
            # cumsum, so selection below is bit-identical.
            cumulative = cum_matrix[:n_live]
            np.cumsum(propensities, axis=1, out=cumulative)
            finished = []
            for pos in range(n_live):
                row = live[pos]
                # A row of the C-contiguous matrix: same pairwise .sum() the
                # serial loop applies to its 1-D propensity vector.
                total = float(propensities[pos].sum())
                if total <= 0.0:
                    finished.append(row)
                    continue
                generator = generators[row]
                tau = generator.exponential(1.0 / total)
                if t[row] + tau >= segment_end:
                    finished.append(row)
                    continue
                t[row] += tau
                recorders[row].fill_before(t[row], states[row])
                threshold = generator.random() * total
                chosen = int(np.searchsorted(cumulative[pos], threshold, side="right"))
                if chosen >= n_reactions:
                    # `total` comes from the pairwise .sum() and may exceed
                    # the sequential cumulative sum by an ulp; fall through
                    # to the last reaction, as the serial loop does.
                    chosen = n_reactions - 1
                compiled.apply(chosen, states[row])
                events_fired[row] += 1
                if events_fired[row] > max_events:
                    raise SimulationError(
                        f"simulation exceeded {max_events} reaction events before t_end",
                    )
            if finished:
                live = [row for row in live if row not in finished]
        for row in range(n_rows):
            recorders[row].fill_before(segment_end, states[row])
        segment_start = segment_end

    trajectories = []
    species = list(compiled.species)
    for row in range(n_rows):
        recorders[row].finish(states[row])
        trajectory = Trajectory(sample_times, species, recorders[row].data)
        if record_species is not None:
            trajectory = trajectory.select(list(record_species))
        trajectories.append(trajectory)
    return trajectories
