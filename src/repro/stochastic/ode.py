"""Deterministic (ODE) integration of the same reaction networks.

The paper argues that standard ODEs are a poor model for the *stochastic*
behaviour of genetic circuits at low molecule counts, but the deterministic
mean-field trajectory is still useful in this toolchain:

* the threshold and propagation-delay analyses of :mod:`repro.vlab` use it to
  find settled low/high output levels quickly and noise-free,
* it serves as the deterministic baseline in the simulator-choice ablation
  (feeding noise-free traces through the same logic analyzer).

A classic fixed-step RK4 integrator is used so the package does not require
scipy (scipy is an optional extra; when present it is not needed here).  The
right-hand side is :meth:`CompiledModel.rates`, which evaluates all reaction
propensities through the model's generated batch kernel
(``propensities_batch``) in one fused call per stage instead of one Python
call per reaction.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..errors import SimulationError
from .events import InputSchedule
from .propensity import compile_model
from .sampling import SampleRecorder, make_sample_times
from .trajectory import Trajectory

__all__ = ["simulate_ode", "OdeSimulator"]


class OdeSimulator:
    """Fixed-step RK4 integrator over the compiled reaction rates."""

    def __init__(
        self,
        model,
        parameter_overrides: Optional[Dict[str, float]] = None,
        step: float = 0.05,
    ):
        if step <= 0:
            raise SimulationError("integration step must be positive")
        self.compiled = compile_model(model, parameter_overrides)
        self.step = float(step)

    def _rk4_step(self, state: np.ndarray, h: float) -> np.ndarray:
        rates = self.compiled.rates
        k1 = rates(state)
        k2 = rates(np.maximum(state + 0.5 * h * k1, 0.0))
        k3 = rates(np.maximum(state + 0.5 * h * k2, 0.0))
        k4 = rates(np.maximum(state + h * k3, 0.0))
        next_state = state + (h / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
        # Molecule counts cannot be negative; clamp tiny undershoots.
        return np.maximum(next_state, 0.0)

    def run(
        self,
        t_end: float,
        sample_interval: float = 1.0,
        schedule: Optional[InputSchedule] = None,
        initial_state: Optional[Dict[str, float]] = None,
        record_species: Optional[Sequence[str]] = None,
        rng=None,  # accepted for interface compatibility with the SSA simulators
    ) -> Trajectory:
        """Integrate until ``t_end``; same interface as the stochastic simulators."""
        compiled = self.compiled
        schedule = schedule or InputSchedule()

        state = compiled.initial_state.copy()
        if initial_state:
            state = compiled.state_from_dict({**compiled.model.initial_state(), **initial_state})

        sample_times = make_sample_times(t_end, sample_interval)
        recorder = SampleRecorder(sample_times, compiled.n_species)

        boundaries = schedule.segment_boundaries(t_end)
        segment_start = 0.0
        for segment_end in boundaries:
            for event in schedule.events_between(segment_start, segment_start + 1e-12):
                compiled.clamp(state, event.settings)
            t = segment_start
            while t < segment_end - 1e-12:
                h = min(self.step, segment_end - t)
                recorder.fill_before(t + h, state)
                state = self._rk4_step(state, h)
                # Keep the clamped species pinned: the mean-field derivative
                # of a boundary species is forced to zero by the compiled
                # model, but numerical drift from other terms is impossible
                # anyway since change vectors exclude them.
                t += h
            recorder.fill_before(segment_end, state)
            segment_start = segment_end

        recorder.finish(state)
        trajectory = Trajectory(sample_times, list(compiled.species), recorder.data)
        if record_species is not None:
            trajectory = trajectory.select(list(record_species))
        return trajectory


def simulate_ode(
    model,
    t_end: float,
    sample_interval: float = 1.0,
    schedule: Optional[InputSchedule] = None,
    initial_state: Optional[Dict[str, float]] = None,
    record_species: Optional[Sequence[str]] = None,
    parameter_overrides: Optional[Dict[str, float]] = None,
    step: float = 0.05,
    rng=None,  # accepted (and ignored) so all SIMULATORS share one call signature
) -> Trajectory:
    """One-shot convenience wrapper around :class:`OdeSimulator`."""
    simulator = OdeSimulator(model, parameter_overrides, step=step)
    return simulator.run(
        t_end,
        sample_interval=sample_interval,
        schedule=schedule,
        initial_state=initial_state,
        record_species=record_species,
    )
