"""Random-number handling shared by the stochastic simulators.

All simulators accept either an integer seed, a :class:`numpy.random.Generator`
or ``None`` (fresh entropy).  Routing every simulator through
:func:`make_rng` keeps runs reproducible — the benchmark harness and tests
pass explicit seeds so the reported tables are stable.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

__all__ = ["make_rng", "spawn_rngs", "RandomState"]

RandomState = Union[None, int, np.random.Generator]


def make_rng(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` draws fresh OS entropy; an ``int`` gives a deterministic stream;
    an existing generator is returned unchanged (so callers can share one).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RandomState, count: int) -> list:
    """Derive ``count`` independent generators from one seed.

    Used when running replicate simulations (e.g. one per input combination
    or one per circuit in the 15-circuit suite) so replicates do not share a
    stream yet remain reproducible from a single seed.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    root = np.random.SeedSequence(seed if isinstance(seed, int) else None)
    if isinstance(seed, np.random.Generator):
        # Derive children deterministically from the generator's own stream.
        children = [
            np.random.default_rng(int(seed.integers(0, 2**63 - 1))) for _ in range(count)
        ]
        return children
    return [np.random.default_rng(child) for child in root.spawn(count)]
