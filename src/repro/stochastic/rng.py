"""Random-number handling shared by the stochastic simulators.

All simulators accept either an integer seed, a :class:`numpy.random.Generator`
or ``None`` (fresh entropy).  Routing every simulator through
:func:`make_rng` keeps runs reproducible — the benchmark harness and tests
pass explicit seeds so the reported tables are stable.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

__all__ = ["make_rng", "spawn_rngs", "fan_out_seeds", "RandomState", "SpawnedSeed"]

RandomState = Union[None, int, np.random.Generator]

#: A child seed produced by :func:`fan_out_seeds`: either a plain ``int`` or a
#: :class:`numpy.random.SeedSequence`.  Both are picklable, so they can cross
#: a process boundary before being turned into a generator — which is how the
#: ensemble engine guarantees bit-identical results across executors.
SpawnedSeed = Union[int, np.random.SeedSequence]


def make_rng(seed=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` draws fresh OS entropy; an ``int`` or ``SeedSequence`` gives a
    deterministic stream; an existing generator is returned unchanged (so
    callers can share one).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def fan_out_seeds(seed, count: int) -> List[SpawnedSeed]:
    """Derive ``count`` independent, *picklable* child seeds from one seed.

    The streams obtained via ``make_rng(child)`` are identical to those of
    :func:`spawn_rngs` for the same ``seed`` — the two functions are two views
    of the same fan-out.  An ``int`` (or ``None``) root spawns children from a
    single :class:`numpy.random.SeedSequence`; a generator root draws one
    integer per child from its own stream (consuming ``count`` draws); a
    ``SeedSequence`` root spawns from that sequence directly (callers with
    several fan-out sites split one root into per-site children first, so the
    sites do not replay each other's streams).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if isinstance(seed, np.random.Generator):
        return [int(seed.integers(0, 2**63 - 1)) for _ in range(count)]
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    elif isinstance(seed, (int, np.integer)):
        root = np.random.SeedSequence(int(seed))
    else:
        root = np.random.SeedSequence(None)
    return list(root.spawn(count))


def spawn_rngs(seed: RandomState, count: int) -> list:
    """Derive ``count`` independent generators from one seed.

    Used when running replicate simulations (e.g. one per input combination
    or one per circuit in the 15-circuit suite) so replicates do not share a
    stream yet remain reproducible from a single seed.
    """
    return [np.random.default_rng(child) for child in fan_out_seeds(seed, count)]
