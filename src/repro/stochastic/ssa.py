"""Gillespie's stochastic simulation algorithm (direct method).

This is the default simulator of the reproduction — the equivalent of the SSA
engine inside D-VASim.  It is an *exact* simulation of the chemical master
equation: at each step the time to the next reaction is drawn from an
exponential with rate equal to the total propensity and the reaction to fire
is chosen proportionally to its propensity (Gillespie 1977, the paper's
reference [7]).

Input species are clamped through an :class:`~repro.stochastic.events.InputSchedule`,
mirroring how the virtual laboratory applies input combinations during a run.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..errors import SimulationError
from .events import InputSchedule
from .propensity import compile_model
from .rng import RandomState, make_rng
from .sampling import SampleRecorder, make_sample_times
from .trajectory import Trajectory

__all__ = ["simulate_ssa", "DirectMethodSimulator"]


class DirectMethodSimulator:
    """Reusable direct-method SSA simulator bound to one compiled model.

    The inner loop evaluates the whole propensity vector through the model's
    generated kernel (one fused call instead of one Python call per reaction)
    and selects the firing reaction with a sequential cumulative sum +
    ``searchsorted`` — both bit-identical to the historical per-reaction
    loop, for either propensity backend.  ``last_event_count`` reports the
    number of reaction firings of the most recent :meth:`run`.
    """

    def __init__(self, model, parameter_overrides: Optional[Dict[str, float]] = None):
        self.compiled = compile_model(model, parameter_overrides)
        self.last_event_count = 0

    def run(
        self,
        t_end: float,
        sample_interval: float = 1.0,
        schedule: Optional[InputSchedule] = None,
        initial_state: Optional[Dict[str, float]] = None,
        rng: RandomState = None,
        record_species: Optional[Sequence[str]] = None,
        max_events: int = 50_000_000,
    ) -> Trajectory:
        """Simulate until ``t_end`` and return a sampled :class:`Trajectory`.

        Parameters
        ----------
        t_end:
            Final simulation time (time units are abstract, as in the paper).
        sample_interval:
            Spacing of the recorded samples; the paper records one sample per
            time unit.
        schedule:
            Input clamping events (applied in addition to the model's initial
            amounts).
        initial_state:
            Optional ``{species: amount}`` overriding initial amounts.
        rng:
            Seed or generator for reproducible runs.
        record_species:
            Restrict the returned trajectory to these species (default: all).
        max_events:
            Hard cap on the number of reaction firings, as a runaway guard.
        """
        compiled = self.compiled
        generator = make_rng(rng)
        schedule = schedule or InputSchedule()

        state = compiled.initial_state.copy()
        if initial_state:
            state = compiled.state_from_dict({**compiled.model.initial_state(), **initial_state})

        sample_times = make_sample_times(t_end, sample_interval)
        recorder = SampleRecorder(sample_times, compiled.n_species)

        propensities = np.empty(compiled.n_reactions, dtype=float)
        cumulative = np.empty(compiled.n_reactions, dtype=float)
        t = 0.0
        events_fired = 0

        boundaries = schedule.segment_boundaries(t_end)
        segment_start = 0.0
        for segment_end in boundaries:
            # Apply every event scheduled at the start of this segment.
            for event in schedule.events_between(segment_start, segment_start + 1e-12):
                compiled.clamp(state, event.settings)
            for event in schedule.events_between(segment_start + 1e-12, segment_end):
                # Events strictly inside a segment cannot happen: boundaries
                # are derived from the schedule itself.  Guard anyway.
                compiled.clamp(state, event.settings)

            t = segment_start
            while t < segment_end:
                compiled.propensities(state, out=propensities)
                total = float(propensities.sum())
                if total <= 0.0:
                    break
                tau = generator.exponential(1.0 / total)
                if t + tau >= segment_end:
                    break
                t += tau
                recorder.fill_before(t, state)
                threshold = generator.random() * total
                # np.cumsum accumulates sequentially, so searchsorted picks
                # the same reaction as the historical linear scan did.
                np.cumsum(propensities, out=cumulative)
                chosen = int(np.searchsorted(cumulative, threshold, side="right"))
                if chosen >= compiled.n_reactions:
                    # `total` comes from the pairwise .sum() and may exceed
                    # the sequential cumulative sum by an ulp; the linear
                    # scan fell through to the last reaction in that case.
                    chosen = compiled.n_reactions - 1
                compiled.apply(chosen, state)
                events_fired += 1
                if events_fired > max_events:
                    raise SimulationError(
                        f"simulation exceeded {max_events} reaction events before t_end",
                    )
            recorder.fill_before(segment_end, state)
            segment_start = segment_end

        recorder.finish(state)
        self.last_event_count = events_fired
        trajectory = Trajectory(sample_times, list(compiled.species), recorder.data)
        if record_species is not None:
            trajectory = trajectory.select(list(record_species))
        return trajectory


def simulate_ssa(
    model,
    t_end: float,
    sample_interval: float = 1.0,
    schedule: Optional[InputSchedule] = None,
    initial_state: Optional[Dict[str, float]] = None,
    rng: RandomState = None,
    record_species: Optional[Sequence[str]] = None,
    parameter_overrides: Optional[Dict[str, float]] = None,
    max_events: int = 50_000_000,
) -> Trajectory:
    """One-shot convenience wrapper around :class:`DirectMethodSimulator`."""
    simulator = DirectMethodSimulator(model, parameter_overrides)
    return simulator.run(
        t_end,
        sample_interval=sample_interval,
        schedule=schedule,
        initial_state=initial_state,
        rng=rng,
        record_species=record_species,
        max_events=max_events,
    )
