"""Sampled simulation traces.

A :class:`Trajectory` is what every simulator in :mod:`repro.stochastic`
returns and what the logic-analysis algorithm consumes: species amounts
sampled on a uniform (or at least monotone) time grid.  The paper's algorithm
operates on "simulation data of all I/O species" (``SDAn``) — that is exactly
this object (or its CSV serialization, see :mod:`repro.io.csvlog`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from ..errors import SimulationError

__all__ = ["Trajectory"]


@dataclass
class Trajectory:
    """Species amounts sampled over time.

    Attributes
    ----------
    times:
        1-D array of sample times, strictly increasing.
    species:
        Names of the recorded species, one per column of ``data``.
    data:
        2-D array of shape ``(len(times), len(species))`` holding the amount
        of each species at each sample time.
    """

    times: np.ndarray
    species: List[str]
    data: np.ndarray

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=float)
        self.data = np.asarray(self.data, dtype=float)
        self.species = list(self.species)
        if self.times.ndim != 1:
            raise SimulationError("trajectory times must be a 1-D array")
        if self.data.ndim != 2:
            raise SimulationError("trajectory data must be a 2-D array")
        if self.data.shape[0] != self.times.shape[0]:
            raise SimulationError(
                f"trajectory has {self.times.shape[0]} sample times but "
                f"{self.data.shape[0]} data rows",
            )
        if self.data.shape[1] != len(self.species):
            raise SimulationError(
                f"trajectory has {len(self.species)} species names but "
                f"{self.data.shape[1]} data columns",
            )
        if self.times.size > 1 and not np.all(np.diff(self.times) > 0):
            raise SimulationError("trajectory times must be strictly increasing")

    # -- basic access --------------------------------------------------------
    def __len__(self) -> int:
        return int(self.times.shape[0])

    def __contains__(self, species: str) -> bool:
        return species in self.species

    def column(self, species: str) -> np.ndarray:
        """The sampled amounts of one species (1-D array)."""
        try:
            index = self.species.index(species)
        except ValueError:
            raise SimulationError(
                f"species {species!r} is not recorded in this trajectory "
                f"(available: {', '.join(self.species)})",
            ) from None
        return self.data[:, index]

    def __getitem__(self, species: str) -> np.ndarray:
        return self.column(species)

    def as_dict(self) -> Dict[str, np.ndarray]:
        """All columns keyed by species name."""
        return {name: self.data[:, i] for i, name in enumerate(self.species)}

    def value_at(self, species: str, time: float) -> float:
        """Amount of ``species`` at the last sample at or before ``time``."""
        column = self.column(species)
        index = int(np.searchsorted(self.times, time, side="right")) - 1
        if index < 0:
            raise SimulationError(f"time {time:g} is before the first sample")
        return float(column[index])

    def final_state(self) -> Dict[str, float]:
        """Species amounts at the last sample."""
        return {name: float(self.data[-1, i]) for i, name in enumerate(self.species)}

    @property
    def sample_interval(self) -> float:
        """The (median) spacing between consecutive samples."""
        if len(self.times) < 2:
            return 0.0
        return float(np.median(np.diff(self.times)))

    # -- transformations ------------------------------------------------------
    def select(self, species: Sequence[str]) -> "Trajectory":
        """A trajectory restricted to the given species, in the given order."""
        indices = []
        for name in species:
            if name not in self.species:
                raise SimulationError(f"species {name!r} is not recorded")
            indices.append(self.species.index(name))
        return Trajectory(self.times.copy(), list(species), self.data[:, indices].copy())

    def slice_time(self, t_start: float, t_end: float) -> "Trajectory":
        """Samples with ``t_start <= t <= t_end``."""
        if t_end < t_start:
            raise SimulationError("t_end must be >= t_start")
        mask = (self.times >= t_start) & (self.times <= t_end)
        return Trajectory(self.times[mask].copy(), list(self.species), self.data[mask].copy())

    def resample(self, new_times: Iterable[float]) -> "Trajectory":
        """Zero-order-hold resample onto ``new_times``.

        Genetic traces are step functions between SSA events, so the correct
        interpolation is "last value seen", not linear.
        """
        new_times = np.asarray(list(new_times), dtype=float)
        if new_times.size and new_times[0] < self.times[0]:
            raise SimulationError("cannot resample before the first sample time")
        indices = np.searchsorted(self.times, new_times, side="right") - 1
        indices = np.clip(indices, 0, len(self.times) - 1)
        return Trajectory(new_times, list(self.species), self.data[indices].copy())

    def mean(
        self,
        species: str,
        t_start: Optional[float] = None,
        t_end: Optional[float] = None,
    ) -> float:
        """Time-window mean of one species (used by threshold estimation)."""
        column = self.column(species)
        mask = np.ones_like(self.times, dtype=bool)
        if t_start is not None:
            mask &= self.times >= t_start
        if t_end is not None:
            mask &= self.times <= t_end
        if not mask.any():
            raise SimulationError("mean() window contains no samples")
        return float(column[mask].mean())

    def concat(self, other: "Trajectory") -> "Trajectory":
        """Append another trajectory recorded over a later time window."""
        if list(other.species) != list(self.species):
            raise SimulationError("cannot concatenate trajectories with different species")
        if len(other) == 0:
            return self
        if len(self) == 0:
            return other
        if other.times[0] <= self.times[-1]:
            # Drop overlapping leading samples of `other`.
            keep = other.times > self.times[-1]
            other = Trajectory(other.times[keep], list(other.species), other.data[keep])
            if len(other) == 0:
                return self
        return Trajectory(
            np.concatenate([self.times, other.times]),
            list(self.species),
            np.vstack([self.data, other.data]),
        )

    def with_column(self, species: str, values: np.ndarray) -> "Trajectory":
        """Return a copy with an extra (or replaced) species column."""
        values = np.asarray(values, dtype=float)
        if values.shape != self.times.shape:
            raise SimulationError(
                f"column for {species!r} has shape {values.shape}, expected {self.times.shape}",
            )
        if species in self.species:
            data = self.data.copy()
            data[:, self.species.index(species)] = values
            return Trajectory(self.times.copy(), list(self.species), data)
        return Trajectory(
            self.times.copy(),
            list(self.species) + [species],
            np.column_stack([self.data, values]),
        )

    # -- construction helpers -------------------------------------------------
    @classmethod
    def from_dict(
        cls,
        times: Iterable[float],
        columns: Mapping[str, Iterable[float]],
    ) -> "Trajectory":
        """Build a trajectory from ``{species: samples}`` columns."""
        names = list(columns.keys())
        times = np.asarray(list(times), dtype=float)
        data = np.column_stack([np.asarray(list(columns[name]), dtype=float) for name in names])
        return cls(times, names, data)

    @classmethod
    def empty(cls, species: Sequence[str]) -> "Trajectory":
        """A trajectory with no samples (useful as a concat identity)."""
        return cls(np.empty(0, dtype=float), list(species), np.empty((0, len(species))))
