"""Sampled simulation traces.

A :class:`Trajectory` is what every simulator in :mod:`repro.stochastic`
returns and what the logic-analysis algorithm consumes: species amounts
sampled on a uniform (or at least monotone) time grid.  The paper's algorithm
operates on "simulation data of all I/O species" (``SDAn``) — that is exactly
this object (or its CSV serialization, see :mod:`repro.io.csvlog`).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from ..errors import SimulationError

__all__ = [
    "Trajectory",
    "encode_trajectories",
    "decode_trajectories",
    "TRAJECTORY_FRAME_MAGIC",
    "TRAJECTORY_FRAME_VERSION",
]


@dataclass
class Trajectory:
    """Species amounts sampled over time.

    Attributes
    ----------
    times:
        1-D array of sample times, strictly increasing.
    species:
        Names of the recorded species, one per column of ``data``.
    data:
        2-D array of shape ``(len(times), len(species))`` holding the amount
        of each species at each sample time.
    """

    times: np.ndarray
    species: List[str]
    data: np.ndarray

    def __post_init__(self) -> None:
        # C-contiguous float64 is part of the dataclass contract: the binary
        # transport (encode_trajectories) takes zero-copy memoryviews of both
        # arrays.  ascontiguousarray is a no-op for arrays already in that
        # layout (every simulator's output), and normalizes Fortran-ordered
        # or integer input.
        self.times = np.ascontiguousarray(self.times, dtype=float)
        self.data = np.ascontiguousarray(self.data, dtype=float)
        self.species = list(self.species)
        if self.times.ndim != 1:
            raise SimulationError("trajectory times must be a 1-D array")
        if self.data.ndim != 2:
            raise SimulationError("trajectory data must be a 2-D array")
        if self.data.shape[0] != self.times.shape[0]:
            raise SimulationError(
                f"trajectory has {self.times.shape[0]} sample times but "
                f"{self.data.shape[0]} data rows",
            )
        if self.data.shape[1] != len(self.species):
            raise SimulationError(
                f"trajectory has {len(self.species)} species names but "
                f"{self.data.shape[1]} data columns",
            )
        if self.times.size > 1 and not np.all(np.diff(self.times) > 0):
            raise SimulationError("trajectory times must be strictly increasing")

    # -- basic access --------------------------------------------------------
    def __len__(self) -> int:
        return int(self.times.shape[0])

    def __contains__(self, species: str) -> bool:
        return species in self.species

    def column(self, species: str) -> np.ndarray:
        """The sampled amounts of one species (1-D array)."""
        try:
            index = self.species.index(species)
        except ValueError:
            raise SimulationError(
                f"species {species!r} is not recorded in this trajectory "
                f"(available: {', '.join(self.species)})",
            ) from None
        return self.data[:, index]

    def __getitem__(self, species: str) -> np.ndarray:
        return self.column(species)

    def as_dict(self) -> Dict[str, np.ndarray]:
        """All columns keyed by species name."""
        return {name: self.data[:, i] for i, name in enumerate(self.species)}

    def value_at(self, species: str, time: float) -> float:
        """Amount of ``species`` at the last sample at or before ``time``."""
        column = self.column(species)
        index = int(np.searchsorted(self.times, time, side="right")) - 1
        if index < 0:
            raise SimulationError(f"time {time:g} is before the first sample")
        return float(column[index])

    def final_state(self) -> Dict[str, float]:
        """Species amounts at the last sample."""
        return {name: float(self.data[-1, i]) for i, name in enumerate(self.species)}

    @property
    def sample_interval(self) -> float:
        """The (median) spacing between consecutive samples."""
        if len(self.times) < 2:
            return 0.0
        return float(np.median(np.diff(self.times)))

    # -- transformations ------------------------------------------------------
    def select(self, species: Sequence[str]) -> "Trajectory":
        """A trajectory restricted to the given species, in the given order."""
        indices = []
        for name in species:
            if name not in self.species:
                raise SimulationError(f"species {name!r} is not recorded")
            indices.append(self.species.index(name))
        return Trajectory(self.times.copy(), list(species), self.data[:, indices].copy())

    def slice_time(self, t_start: float, t_end: float) -> "Trajectory":
        """Samples with ``t_start <= t <= t_end``."""
        if t_end < t_start:
            raise SimulationError("t_end must be >= t_start")
        mask = (self.times >= t_start) & (self.times <= t_end)
        return Trajectory(self.times[mask].copy(), list(self.species), self.data[mask].copy())

    def resample(self, new_times: Iterable[float]) -> "Trajectory":
        """Zero-order-hold resample onto ``new_times``.

        Genetic traces are step functions between SSA events, so the correct
        interpolation is "last value seen", not linear.
        """
        new_times = np.asarray(list(new_times), dtype=float)
        if new_times.size and new_times[0] < self.times[0]:
            raise SimulationError("cannot resample before the first sample time")
        indices = np.searchsorted(self.times, new_times, side="right") - 1
        indices = np.clip(indices, 0, len(self.times) - 1)
        return Trajectory(new_times, list(self.species), self.data[indices].copy())

    def mean(
        self,
        species: str,
        t_start: Optional[float] = None,
        t_end: Optional[float] = None,
    ) -> float:
        """Time-window mean of one species (used by threshold estimation)."""
        column = self.column(species)
        mask = np.ones_like(self.times, dtype=bool)
        if t_start is not None:
            mask &= self.times >= t_start
        if t_end is not None:
            mask &= self.times <= t_end
        if not mask.any():
            raise SimulationError("mean() window contains no samples")
        return float(column[mask].mean())

    def concat(self, other: "Trajectory") -> "Trajectory":
        """Append another trajectory recorded over a later time window."""
        if list(other.species) != list(self.species):
            raise SimulationError("cannot concatenate trajectories with different species")
        if len(other) == 0:
            return self
        if len(self) == 0:
            return other
        if other.times[0] <= self.times[-1]:
            # Drop overlapping leading samples of `other`.
            keep = other.times > self.times[-1]
            other = Trajectory(other.times[keep], list(other.species), other.data[keep])
            if len(other) == 0:
                return self
        return Trajectory(
            np.concatenate([self.times, other.times]),
            list(self.species),
            np.vstack([self.data, other.data]),
        )

    def with_column(self, species: str, values: np.ndarray) -> "Trajectory":
        """Return a copy with an extra (or replaced) species column."""
        values = np.asarray(values, dtype=float)
        if values.shape != self.times.shape:
            raise SimulationError(
                f"column for {species!r} has shape {values.shape}, expected {self.times.shape}",
            )
        if species in self.species:
            data = self.data.copy()
            data[:, self.species.index(species)] = values
            return Trajectory(self.times.copy(), list(self.species), data)
        return Trajectory(
            self.times.copy(),
            list(self.species) + [species],
            np.column_stack([self.data, values]),
        )

    # -- construction helpers -------------------------------------------------
    @classmethod
    def from_dict(
        cls,
        times: Iterable[float],
        columns: Mapping[str, Iterable[float]],
    ) -> "Trajectory":
        """Build a trajectory from ``{species: samples}`` columns."""
        names = list(columns.keys())
        times = np.asarray(list(times), dtype=float)
        data = np.column_stack([np.asarray(list(columns[name]), dtype=float) for name in names])
        return cls(times, names, data)

    @classmethod
    def empty(cls, species: Sequence[str]) -> "Trajectory":
        """A trajectory with no samples (useful as a concat identity)."""
        return cls(np.empty(0, dtype=float), list(species), np.empty((0, len(species))))


# -- compact binary transport -------------------------------------------------
#
# The ensemble engine's batch result path ships trajectories as one versioned
# binary frame per batch instead of one pickle per replicate.  Layout (all
# integers little-endian):
#
#   magic      4 bytes   b"GLTF"
#   version    u16       TRAJECTORY_FRAME_VERSION
#   flags      u16       bit 0: all trajectories share one time grid
#   n_traj     u32
#   n_species  u32
#   species    n_species × (u16 length + UTF-8 bytes)   (shared by the batch)
#   times      shared grid: one block; else one per trajectory:
#              u32 n_times + n_times × f64 (raw little-endian)
#   data       n_traj × (n_times × n_species × f64, C order, raw LE)
#
# Lockstep batch replicates share grid and species, so the header and the
# time block are paid once per *batch*; the per-replicate cost is exactly the
# raw float64 data block, with no pickle framing, no per-object type tags and
# no duplicated species strings.  Values round-trip exactly (same bits,
# including NaN payloads).

TRAJECTORY_FRAME_MAGIC = b"GLTF"
TRAJECTORY_FRAME_VERSION = 1
_FLAG_SHARED_GRID = 1

_HEADER = struct.Struct("<4sHHII")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")


def _le_f64_view(array: np.ndarray) -> memoryview:
    """A zero-copy little-endian float64 memoryview of a contiguous array."""
    # Trajectory.__post_init__ guarantees C-contiguous float64, and the
    # supported platforms are little-endian, so this never copies; the
    # astype is a safety net for exotic inputs.
    if array.dtype.byteorder == ">":  # pragma: no cover - big-endian hosts
        array = array.astype("<f8")
    return memoryview(np.ascontiguousarray(array, dtype=np.float64)).cast("B")


def encode_trajectories(trajectories: Sequence[Trajectory]) -> bytes:
    """Encode a batch of trajectories into one compact binary frame.

    Every trajectory must record the same species (true for lockstep batch
    replicates by construction); a shared time grid is detected and encoded
    once.  The inverse is :func:`decode_trajectories`.
    """
    trajectories = list(trajectories)
    if not trajectories:
        raise SimulationError("cannot encode an empty trajectory batch")
    species = trajectories[0].species
    for trajectory in trajectories[1:]:
        if trajectory.species != species:
            raise SimulationError(
                "a trajectory frame requires one shared species table; got "
                f"{species} and {trajectory.species}",
            )
    first_times = trajectories[0].times
    shared_grid = all(
        t.times is first_times
        or (t.times.shape == first_times.shape and np.array_equal(t.times, first_times))
        for t in trajectories[1:]
    )
    flags = _FLAG_SHARED_GRID if shared_grid else 0

    pieces = [
        _HEADER.pack(
            TRAJECTORY_FRAME_MAGIC,
            TRAJECTORY_FRAME_VERSION,
            flags,
            len(trajectories),
            len(species),
        ),
    ]
    for name in species:
        encoded = name.encode("utf-8")
        if len(encoded) > 0xFFFF:
            raise SimulationError(f"species name too long to encode: {name[:40]!r}...")
        pieces.append(_U16.pack(len(encoded)))
        pieces.append(encoded)
    if shared_grid:
        pieces.append(_U32.pack(first_times.shape[0]))
        pieces.append(_le_f64_view(first_times))
        for trajectory in trajectories:
            pieces.append(_le_f64_view(trajectory.data))
    else:
        for trajectory in trajectories:
            pieces.append(_U32.pack(trajectory.times.shape[0]))
            pieces.append(_le_f64_view(trajectory.times))
            pieces.append(_le_f64_view(trajectory.data))
    return b"".join(pieces)


class _FrameReader:
    """Cursor over a frame's bytes; every read validates the remaining length."""

    def __init__(self, frame: bytes):
        self.buffer = frame
        self.offset = 0

    def take(self, count: int) -> memoryview:
        if self.offset + count > len(self.buffer):
            raise SimulationError(
                f"truncated trajectory frame: wanted {count} bytes at offset "
                f"{self.offset}, frame has {len(self.buffer)}",
            )
        view = memoryview(self.buffer)[self.offset : self.offset + count]
        self.offset += count
        return view

    def u16(self) -> int:
        return _U16.unpack(self.take(_U16.size))[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(_U32.size))[0]

    def f64_block(self, count: int) -> np.ndarray:
        raw = self.take(count * 8)
        # frombuffer views are read-only and borrow the frame's memory;
        # trajectories own writable native-endian copies.
        return np.frombuffer(raw, dtype="<f8", count=count).astype(np.float64)


def decode_trajectories(frame: bytes) -> List[Trajectory]:
    """Decode a frame produced by :func:`encode_trajectories`.

    Raises :class:`~repro.errors.SimulationError` for wrong magic, an
    unsupported version, or a truncated frame; the returned trajectories own
    their (writable, native-endian) arrays.
    """
    reader = _FrameReader(frame)
    magic, version, flags, n_traj, n_species = _HEADER.unpack(reader.take(_HEADER.size))
    if magic != TRAJECTORY_FRAME_MAGIC:
        raise SimulationError(f"not a trajectory frame (magic {magic!r})")
    if version != TRAJECTORY_FRAME_VERSION:
        raise SimulationError(
            f"unsupported trajectory frame version {version} "
            f"(this build reads version {TRAJECTORY_FRAME_VERSION})",
        )
    species = [str(reader.take(reader.u16()), "utf-8") for _ in range(n_species)]

    trajectories = []
    if flags & _FLAG_SHARED_GRID:
        n_times = reader.u32()
        times = reader.f64_block(n_times)
        for _ in range(n_traj):
            data = reader.f64_block(n_times * n_species).reshape(n_times, n_species)
            trajectories.append(Trajectory(times, species, data))
    else:
        for _ in range(n_traj):
            n_times = reader.u32()
            times = reader.f64_block(n_times)
            data = reader.f64_block(n_times * n_species).reshape(n_times, n_species)
            trajectories.append(Trajectory(times, species, data))
    if reader.offset != len(frame):
        raise SimulationError(
            f"trajectory frame has {len(frame) - reader.offset} trailing bytes",
        )
    return trajectories
