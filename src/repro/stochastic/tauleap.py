"""Explicit tau-leaping (approximate stochastic simulation).

Tau-leaping fires a Poisson-distributed number of each reaction over a leap
interval instead of simulating every event.  It trades exactness for speed
and is offered as an alternative trace source for the logic analyzer: the
paper's algorithm only needs traces whose logic-level statistics are right,
and for the well-separated gate kinetics used here tau-leaping preserves
those statistics while being several times faster on large circuits (see the
``simulator choice`` ablation in DESIGN.md).

The implementation uses the bounded-relative-change tau selection of Cao,
Gillespie & Petzold (2006) with rejection of leaps that would drive a species
negative.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..errors import NegativeStateError, SimulationError
from .events import InputSchedule
from .propensity import compile_model
from .rng import RandomState, make_rng
from .sampling import SampleRecorder, make_sample_times
from .trajectory import Trajectory

__all__ = ["simulate_tau_leap", "TauLeapSimulator"]


class TauLeapSimulator:
    """Explicit tau-leaping simulator bound to one compiled model."""

    def __init__(
        self,
        model,
        parameter_overrides: Optional[Dict[str, float]] = None,
        epsilon: float = 0.03,
        min_tau: float = 1e-6,
        max_tau: float = 10.0,
    ):
        if not 0 < epsilon < 1:
            raise SimulationError("epsilon must be in (0, 1)")
        self.compiled = compile_model(model, parameter_overrides)
        self.epsilon = float(epsilon)
        self.min_tau = float(min_tau)
        self.max_tau = float(max_tau)

    def _select_tau(self, state: np.ndarray, propensities: np.ndarray) -> float:
        """Bounded-relative-change tau selection (simplified Cao et al.)."""
        compiled = self.compiled
        total = float(propensities.sum())
        if total <= 0.0:
            return self.max_tau
        # Mean and variance of the change of each species over one time unit.
        mean_change = np.zeros(compiled.n_species)
        var_change = np.zeros(compiled.n_species)
        for r in range(compiled.n_reactions):
            a = propensities[r]
            if a <= 0.0:
                continue
            idx = compiled._change_indices[r]
            if idx.size == 0:
                continue
            deltas = compiled._change_deltas[r]
            mean_change[idx] += a * deltas
            var_change[idx] += a * deltas * deltas
        bound = np.maximum(self.epsilon * state, 1.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            tau_mean = np.where(mean_change != 0.0, bound / np.abs(mean_change), np.inf)
            tau_var = np.where(var_change != 0.0, bound * bound / var_change, np.inf)
        tau = float(min(tau_mean.min(), tau_var.min()))
        return float(np.clip(tau, self.min_tau, self.max_tau))

    def run(
        self,
        t_end: float,
        sample_interval: float = 1.0,
        schedule: Optional[InputSchedule] = None,
        initial_state: Optional[Dict[str, float]] = None,
        rng: RandomState = None,
        record_species: Optional[Sequence[str]] = None,
        max_steps: int = 10_000_000,
    ) -> Trajectory:
        """Simulate until ``t_end``; same contract as the exact simulators."""
        compiled = self.compiled
        generator = make_rng(rng)
        schedule = schedule or InputSchedule()

        state = compiled.initial_state.copy()
        if initial_state:
            state = compiled.state_from_dict({**compiled.model.initial_state(), **initial_state})

        sample_times = make_sample_times(t_end, sample_interval)
        recorder = SampleRecorder(sample_times, compiled.n_species)
        propensities = np.empty(compiled.n_reactions, dtype=float)
        propensities_row = propensities[None, :]  # [1, R] view for the batch kernel
        steps = 0
        # `counts @ change_matrix` is bit-identical to the historical
        # sequential per-reaction loop only when every addition is exact:
        # whole-number stoichiometries AND a whole-number state (a fractional
        # state double-rounds differently under `state + (c1*d1 + c2*d2)`
        # than under `((state + c1*d1) + c2*d2)`).  Stoichiometry is a model
        # constant; state integrality is re-checked per segment below (input
        # clamps can introduce fractional amounts) and is invariant within a
        # segment, because the matmul path only ever adds whole numbers.
        integral_stoichiometry = compiled.has_integral_stoichiometry
        change_matrix = compiled.change_matrix() if integral_stoichiometry else None

        boundaries = schedule.segment_boundaries(t_end)
        segment_start = 0.0
        for segment_end in boundaries:
            for event in schedule.events_between(segment_start, segment_start + 1e-12):
                compiled.clamp(state, event.settings)
            use_matrix = integral_stoichiometry and bool((state == np.floor(state)).all())
            t = segment_start
            while t < segment_end:
                compiled.propensities_batch(state[None, :], out=propensities_row)
                total = float(propensities.sum())
                if total <= 0.0:
                    break
                tau = min(self._select_tau(state, propensities), segment_end - t)
                tau = max(tau, self.min_tau)
                # Draw firing counts; retry with halved tau if any species
                # would go negative (bounded number of retries).
                for _ in range(40):
                    counts = generator.poisson(propensities * tau)
                    if use_matrix:
                        trial = state + counts @ change_matrix
                    else:
                        trial = state.copy()
                        for r in range(compiled.n_reactions):
                            if counts[r]:
                                idx = compiled._change_indices[r]
                                if idx.size:
                                    trial[idx] += counts[r] * compiled._change_deltas[r]
                    if (trial >= 0).all():
                        break
                    tau *= 0.5
                    if tau < self.min_tau:
                        negative = int(np.argmin(trial))
                        raise NegativeStateError(
                            compiled.species[negative],
                            float(trial[negative]),
                            t,
                        )
                else:  # pragma: no cover - requires pathological models
                    negative = int(np.argmin(trial))
                    raise NegativeStateError(
                        compiled.species[negative],
                        float(trial[negative]),
                        t,
                    )
                t += tau
                recorder.fill_before(min(t, segment_end), state)
                state = trial
                steps += 1
                if steps > max_steps:
                    raise SimulationError(
                        f"tau-leaping exceeded {max_steps} steps before t_end",
                    )
            recorder.fill_before(segment_end, state)
            segment_start = segment_end

        recorder.finish(state)
        trajectory = Trajectory(sample_times, list(compiled.species), recorder.data)
        if record_species is not None:
            trajectory = trajectory.select(list(record_species))
        return trajectory


def simulate_tau_leap(
    model,
    t_end: float,
    sample_interval: float = 1.0,
    schedule: Optional[InputSchedule] = None,
    initial_state: Optional[Dict[str, float]] = None,
    rng: RandomState = None,
    record_species: Optional[Sequence[str]] = None,
    parameter_overrides: Optional[Dict[str, float]] = None,
    epsilon: float = 0.03,
) -> Trajectory:
    """One-shot convenience wrapper around :class:`TauLeapSimulator`."""
    simulator = TauLeapSimulator(model, parameter_overrides, epsilon=epsilon)
    return simulator.run(
        t_end,
        sample_interval=sample_interval,
        schedule=schedule,
        initial_state=initial_state,
        rng=rng,
        record_species=record_species,
    )
