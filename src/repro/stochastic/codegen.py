"""Whole-model propensity kernel code generation.

The interpreted path (:class:`~repro.stochastic.propensity.CompiledModel` with
``REPRO_KERNEL=interp``) evaluates propensities by calling one small compiled
function per reaction, paying Python call overhead, argument unpacking and
constant-dictionary lookups *R* times per evaluation.  This module instead
emits **one generated Python module per model** containing three fused
kernels:

* ``propensities_all(state, out)`` — the full propensity vector with every
  constant folded to a literal and direct ``state[i]`` indexing (no
  per-reaction call, no tuple unpacking);
* ``propensities_after(r, state, out)`` — recompute only the reactions that
  depend on species changed by reaction ``r`` (the Gibson–Bruck update);
* ``propensities_batch(states, out)`` — propensities of a ``[B, S]`` state
  matrix at once, used as the ODE right-hand side and the tau-leap evaluator.

Bit-identity contract
---------------------
The kernels are constructed to produce **bit-identical** values to the
interpreted per-reaction path:

* generated scalar expressions mirror :meth:`Expr.to_python` exactly — same
  operator tree, same parenthesisation — so each operation sees the same
  operands in the same order;
* constant folding only replaces *fully constant* subtrees with the value the
  interpreter would compute at run time (evaluated with the same CPython
  float semantics), never re-associates mixed expressions;
* scalar kernels read state entries as Python floats (``state.item(i)``),
  which halves arithmetic cost versus ``numpy.float64`` scalars while
  producing identical bits: IEEE ``+ - * /`` agree exactly and CPython pow
  matches numpy scalar pow (both defer to libm).  The one observable
  difference is *error style* on pathological laws — dividing by zero or a
  pow domain/overflow error raises ``ZeroDivisionError``/``OverflowError``
  under float semantics where numpy scalars yield ``inf``/``nan`` with a
  warning; no finite propensity value ever differs;
* the batch kernel routes ``^``/``pow`` and the transcendental functions
  through exact elementwise helpers instead of numpy's vectorised ufuncs —
  numpy's SIMD ``exp``/``power`` loops are allowed to differ from libm by an
  ulp, which would break trajectory parity (verified empirically; see
  ``tests/stochastic/test_kernel_parity.py``).

The generated source is a plain string: it can be shipped across process
boundaries and ``exec``'d by pool workers (see :mod:`repro.engine.cache`),
which is far cheaper than re-parsing and re-compiling every kinetic-law AST.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from ..errors import PropensityError, SimulationError
from ..sbml.ast import FUNCTIONS, BinOp, Call, Expr, Neg, Num, Sym

__all__ = [
    "KERNEL_ENV_VAR",
    "BACKEND_CODEGEN",
    "BACKEND_INTERP",
    "KERNEL_FORMAT",
    "default_backend",
    "ReactionKernelSpec",
    "dependents_table",
    "generate_kernel_source",
    "PropensityKernel",
    "compile_kernel",
    "load_kernel",
    "kernel_namespace",
]

#: Environment variable selecting the propensity backend for newly compiled
#: models: ``codegen`` (default, generated whole-model kernels) or ``interp``
#: (the documented per-reaction interpreted fallback).
KERNEL_ENV_VAR = "REPRO_KERNEL"
BACKEND_CODEGEN = "codegen"
BACKEND_INTERP = "interp"

#: Version stamp embedded in every generated module.  A worker handed kernel
#: source from a different package version refuses to load it (and recompiles
#: from the model instead of silently running a stale kernel).
KERNEL_FORMAT = 1

#: Above this many generated update statements the per-reaction incremental
#: functions would bloat the module (dense dependency graphs are O(R^2));
#: ``propensities_after`` then degrades to a full recompute, which is always
#: correct because untouched reactions recompute to their previous values.
_AFTER_STATEMENT_CAP = 20_000


def default_backend() -> str:
    """The backend selected by ``REPRO_KERNEL`` (``codegen`` when unset)."""
    value = os.environ.get(KERNEL_ENV_VAR, "").strip().lower() or BACKEND_CODEGEN
    if value not in (BACKEND_CODEGEN, BACKEND_INTERP):
        raise SimulationError(
            f"unknown propensity backend {value!r} in ${KERNEL_ENV_VAR}; "
            f"choose {BACKEND_CODEGEN!r} or {BACKEND_INTERP!r}",
        )
    return value


@dataclass(frozen=True)
class ReactionKernelSpec:
    """Everything codegen needs to know about one reaction.

    ``species_args`` maps each species symbol the law reads to its state
    column; ``constants`` is the fully folded constant environment (global
    parameters, compile-time overrides, then local parameters — local values
    shadow globals, exactly as in SBML).
    """

    rid: str
    expr: Expr
    species_args: Tuple[Tuple[str, int], ...]
    constants: Mapping[str, float]


def dependents_table(
    law_species: Sequence[Iterable[str]],
    changed_species: Sequence[Iterable[str]],
) -> List[List[int]]:
    """Reaction dependency graph in one pass over a species→readers index.

    ``dependents[r]`` lists every reaction (including ``r`` itself) whose
    kinetic law reads a species changed when ``r`` fires — the set Gibson–
    Bruck must recompute.  Built as species→readers index + one union per
    reaction, i.e. O(R · deps) instead of the O(R²) all-pairs set
    intersections it replaces.
    """
    readers: Dict[str, List[int]] = {}
    for j, symbols in enumerate(law_species):
        for sid in symbols:
            readers.setdefault(sid, []).append(j)
    dependents: List[List[int]] = []
    for r, changed in enumerate(changed_species):
        deps = {r}
        for sid in changed:
            deps.update(readers.get(sid, ()))
        dependents.append(sorted(deps))
    return dependents


# ---------------------------------------------------------------------------
# Expression rendering
# ---------------------------------------------------------------------------


def _literal(value: float) -> str:
    """A Python literal that round-trips ``value`` exactly."""
    value = float(value)
    if math.isinf(value):
        return 'float("inf")' if value > 0 else 'float("-inf")'
    if math.isnan(value):
        return 'float("nan")'
    return repr(value)


def _fold_constants(expr: Expr, constants: Mapping[str, float]) -> Expr:
    """Replace fully constant subtrees with the value the interpreter computes.

    Folding is bottom-up and only collapses subtrees whose leaves are all
    constants, evaluated with the exact same CPython float operations the
    interpreted path performs at run time — so the folded literal is
    bit-identical to the runtime value.  Subtrees whose evaluation raises
    (division by zero, overflow, domain errors) are left unfolded so the
    error still occurs at simulation time, as it does today.
    """
    if isinstance(expr, Num):
        return expr
    if isinstance(expr, Sym):
        if expr.name in constants:
            return Num(float(constants[expr.name]))
        return expr
    if isinstance(expr, Neg):
        folded: Expr = Neg(_fold_constants(expr.operand, constants))
        children: Tuple[Expr, ...] = (folded.operand,)
    elif isinstance(expr, BinOp):
        folded = BinOp(
            expr.op,
            _fold_constants(expr.left, constants),
            _fold_constants(expr.right, constants),
        )
        children = (folded.left, folded.right)
    elif isinstance(expr, Call):
        folded = Call(expr.func, tuple(_fold_constants(a, constants) for a in expr.args))
        children = folded.args
    else:  # pragma: no cover - Expr has no other node types
        return expr
    if all(isinstance(child, Num) for child in children):
        try:
            return Num(folded.evaluate({}))
        except Exception:
            return folded
    return folded


class _FunctionBody:
    """Collects preamble statements (temporaries) for one generated function."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self._counter = 0

    def temp(self) -> str:
        self._counter += 1
        return f"_t{self._counter}"


_ATOM_TYPES = (Num, Sym)


def _render(expr: Expr, names: Mapping[str, str], body: _FunctionBody, vector: bool) -> str:
    """Render a (folded) expression to Python source.

    Mirrors :meth:`Expr.to_python` exactly in operator structure so the
    generated code performs the same operations in the same order as the
    interpreted per-reaction functions.  ``names`` maps species symbols to
    hoisted local variables; every other symbol must have been folded away.
    """
    if isinstance(expr, Num):
        return _literal(expr.value)
    if isinstance(expr, Sym):
        try:
            return names[expr.name]
        except KeyError:
            # Matches compile_function's diagnostic for e.g. `time`.
            raise PropensityError(
                f"symbol {expr.name!r} is neither an argument nor a supplied constant",
            ) from None
    if isinstance(expr, Neg):
        return f"(-{_render(expr.operand, names, body, vector)})"
    if isinstance(expr, BinOp):
        left = _render(expr.left, names, body, vector)
        right = _render(expr.right, names, body, vector)
        if expr.op == "^":
            if vector:
                # numpy's vectorised power ufunc is not bit-identical to
                # scalar pow; _vpow applies scalar pow elementwise.
                return f"_vpow({left}, {right})"
            return f"({left} ** {right})"
        return f"({left} {expr.op} {right})"
    if isinstance(expr, Call):
        if not vector and expr.func in ("hill_act", "hill_rep"):
            inlined = _render_hill_inline(expr, names, body)
            if inlined is not None:
                return inlined
        prefix = "_vfn_" if vector else "_fn_"
        args = ", ".join(_render(a, names, body, vector) for a in expr.args)
        return f"{prefix}{expr.func}({args})"
    raise PropensityError(f"cannot generate code for expression node {expr!r}")


def _render_hill_inline(expr: Call, names: Mapping[str, str], body: _FunctionBody):
    """Inline ``hill_act``/``hill_rep`` when K and n folded to literals.

    The Hill functions are the inner-loop workhorses of genetic gate models;
    inlining removes a Python call per reaction per event and folds ``K^n``
    to a literal.  The emitted expression replicates the scalar helpers'
    bodies operation-for-operation (including the ``x <= 0`` guard and the
    single evaluation of ``x^n``), so the value is bit-identical.
    """
    x, k, n = expr.args
    if not (isinstance(k, Num) and isinstance(n, Num)):
        return None
    k_value, n_value = float(k.value), float(n.value)
    try:
        kn = k_value**n_value  # the same CPython pow _hill_* performs at run time
    except Exception:
        return None
    xs = _render(x, names, body, vector=False)
    if not isinstance(x, _ATOM_TYPES):
        # Guard and power both read x; a temporary keeps it single-evaluation.
        temp = body.temp()
        body.lines.append(f"{temp} = {xs}")
        xs = temp
    kn_lit, n_lit = _literal(kn), _literal(n_value)
    if expr.func == "hill_rep":
        return f"(1.0 if {xs} <= 0.0 else ({kn_lit} / ({kn_lit} + {xs} ** {n_lit})))"
    xn = body.temp()
    return f"(0.0 if {xs} <= 0.0 else (({xn} := {xs} ** {n_lit}) / ({kn_lit} + {xn})))"


# ---------------------------------------------------------------------------
# Module generation
# ---------------------------------------------------------------------------


def _int_tuple(values: Iterable[int]) -> str:
    items = ", ".join(str(int(v)) for v in values)
    return f"({items},)" if items else "()"


@dataclass
class _RenderedReaction:
    """One reaction's scalar snippet, reusable across generated functions.

    ``folded`` and ``used_species`` are also reused by the batch-kernel
    section so the (identical) folding pass runs exactly once per reaction.
    """

    preamble: List[str]
    guarded: List[str]
    used_species: Tuple[Tuple[str, int], ...]
    folded: Expr


def _scalar_reaction(spec: ReactionKernelSpec, r: int, counter: _FunctionBody) -> _RenderedReaction:
    folded = _fold_constants(spec.expr, spec.constants)
    used = tuple((sid, idx) for sid, idx in spec.species_args if sid in set(folded.symbols()))
    names = {sid: f"_s{idx}" for sid, idx in used}
    body = _FunctionBody()
    body._counter = counter._counter
    rendered = _render(folded, names, body, vector=False)
    counter._counter = body._counter  # keep temporaries unique module-wide
    guarded = [
        f"_v = {rendered}",
        "if _v > 0.0:",
        f"    out[{r}] = _v",
        "elif _v != _v:",
        f"    _nan({r})",
        "else:",
        f"    out[{r}] = 0.0",
    ]
    return _RenderedReaction(body.lines, guarded, used, folded)


def _emit_function(
    lines: List[str],
    name: str,
    arg: str,
    reactions: Sequence[_RenderedReaction],
) -> None:
    lines.append(f"def {name}({arg}, out):")
    hoisted = sorted(
        {(sid, idx) for block in reactions for sid, idx in block.used_species},
        key=lambda item: item[1],
    )
    for _, idx in hoisted:
        # .item() yields a Python float: bit-identical values, ~2x cheaper
        # arithmetic than numpy scalar ops (see module docstring).
        lines.append(f"    _s{idx} = {arg}.item({idx})")
    for block in reactions:
        for line in block.preamble:
            lines.append(f"    {line}")
        for line in block.guarded:
            lines.append(f"    {line}")
    lines.append("    return out")
    lines.append("")


def generate_kernel_source(
    model_sid: str,
    specs: Sequence[ReactionKernelSpec],
    dependents: Sequence[Sequence[int]],
    n_species: int,
) -> str:
    """Emit the Python module source of one model's propensity kernels."""
    n_reactions = len(specs)
    counter = _FunctionBody()
    rendered = [_scalar_reaction(spec, r, counter) for r, spec in enumerate(specs)]

    lines: List[str] = [
        f'"""Propensity kernel generated for model {model_sid!r} '
        f'({n_reactions} reactions, {n_species} species).',
        "",
        "Generated by repro.stochastic.codegen — do not edit; regenerate from the",
        "model instead.  Executed inside the namespace built by kernel_namespace().",
        '"""',
        "",
        f"KERNEL_FORMAT = {KERNEL_FORMAT}",
        f"N_REACTIONS = {n_reactions}",
        f"N_SPECIES = {n_species}",
        f"_REACTION_IDS = ({', '.join(repr(s.rid) for s in specs)},)",
        f"DEPENDENTS = ({', '.join(_int_tuple(deps) for deps in dependents)},)",
        "",
        "",
        "def _nan(r):",
        "    raise PropensityError('propensity of reaction %r is NaN' % (_REACTION_IDS[r],))",
        "",
        "",
    ]

    _emit_function(lines, "propensities_all", "state", rendered)
    lines.append("")

    total_after_statements = sum(len(dependents[r]) for r in range(n_reactions))
    if total_after_statements <= _AFTER_STATEMENT_CAP:
        for r in range(n_reactions):
            _emit_function(
                lines,
                f"_after_{r}",
                "state",
                [rendered[j] for j in dependents[r]],
            )
        lines.append(f"_AFTER = ({', '.join(f'_after_{r}' for r in range(n_reactions))},)")
        lines.extend(
            [
                "",
                "",
                "def propensities_after(r, state, out):",
                "    _AFTER[r](state, out)",
                "    return out",
                "",
            ],
        )
    else:
        lines.extend(
            [
                "",
                "def propensities_after(r, state, out):",
                "    # Dense dependency graph: per-reaction update functions would",
                "    # exceed the generated-module size cap, so fall back to a full",
                "    # recompute (untouched reactions recompute to the same values).",
                "    return propensities_all(state, out)",
                "",
            ],
        )

    # Batch kernel: vectorised over the rows of a [B, S] state matrix.  The
    # NaN guard and the zero clamp run once over the whole matrix (not per
    # reaction) — same values, far less per-call numpy overhead.
    lines.extend(
        [
            "",
            "def _nan_batch(out):",
            "    _nan(int(np.argmax(np.isnan(out).any(axis=0))))",
            "",
            "",
            "def propensities_batch(states, out=None):",
            "    if out is None:",
            "        out = np.empty((states.shape[0], N_REACTIONS), dtype=float)",
        ],
    )
    batch_used = set()
    batch_blocks: List[List[str]] = []
    for r, block_info in enumerate(rendered):
        batch_used.update(block_info.used_species)
        names = {sid: f"_s{idx}" for sid, idx in block_info.used_species}
        body = _FunctionBody()
        expr_src = _render(block_info.folded, names, body, vector=True)
        block = [f"    {line}" for line in body.lines]
        block.append(f"    out[:, {r}] = {expr_src}")
        batch_blocks.append(block)
    for _, idx in sorted(batch_used, key=lambda item: item[1]):
        lines.append(f"    _s{idx} = states[:, {idx}]")
    for block in batch_blocks:
        lines.extend(block)
    lines.extend(
        [
            "    if np.isnan(out).any():",
            "        _nan_batch(out)",
            "    np.copyto(out, np.where(out > 0.0, out, 0.0))",
            "    return out",
            "",
        ],
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Kernel loading
# ---------------------------------------------------------------------------


def _vpow(base, exponent):
    """Elementwise power with *scalar* pow semantics.

    numpy's vectorised ``power`` ufunc may differ from scalar libm ``pow`` in
    the last ulp (SIMD implementations), which would break the bit-identity
    contract between the batch kernel and the scalar paths.  Scalar numpy
    ``**`` matches CPython pow exactly, so apply it per element.
    """
    if np.ndim(base) == 0 and np.ndim(exponent) == 0:
        return base**exponent
    base_b, exp_b = np.broadcast_arrays(
        np.asarray(base, dtype=float),
        np.asarray(exponent, dtype=float),
    )
    out = np.empty(base_b.shape, dtype=float)
    flat_out = out.ravel()
    flat_base = base_b.ravel()
    flat_exp = exp_b.ravel()
    for i in range(flat_base.size):
        flat_out[i] = flat_base[i] ** flat_exp[i]
    return out


def _elementwise(fn):
    """Vectorise a scalar function by exact per-element application."""

    def vectorised(values):
        if np.ndim(values) == 0:
            return fn(values)
        arr = np.asarray(values, dtype=float)
        out = np.empty(arr.shape, dtype=float)
        flat_in = arr.ravel()
        flat_out = out.ravel()
        for i in range(flat_in.size):
            flat_out[i] = fn(flat_in[i])
        return out

    return vectorised


def _vfn_hill_act(x, k, n):
    with np.errstate(all="ignore"):
        xn = _vpow(x, n)
        kn = _vpow(k, n)
        ratio = xn / (kn + xn)
    return np.where(np.asarray(x) <= 0.0, 0.0, ratio)


def _vfn_hill_rep(x, k, n):
    with np.errstate(all="ignore"):
        xn = _vpow(x, n)
        kn = _vpow(k, n)
        ratio = kn / (kn + xn)
    return np.where(np.asarray(x) <= 0.0, 1.0, ratio)


def _vfn_piecewise(*args):
    if len(args) % 2:
        result = args[-1]
        pairs = args[:-1]
    else:
        result = 0.0
        pairs = args
    for i in range(len(pairs) - 2, -1, -2):
        # Scalar piecewise tests truthiness: non-zero (including NaN) selects.
        result = np.where(np.asarray(pairs[i + 1]) != 0.0, pairs[i], result)
    return result


def _vfn_reduce(scalar_fn):
    """Vectorise variadic ``min``/``max`` by exact per-element application.

    ``np.minimum``/``np.maximum`` propagate NaN where Python's ``min``/``max``
    are comparison-driven (``min(2.0, nan) == 2.0``); applying the scalar
    builtin per element keeps the batch kernel bit-identical to the scalar
    paths even in that corner.
    """

    def reducer(*args):
        if all(np.ndim(a) == 0 for a in args):
            return scalar_fn(*args)
        arrays = np.broadcast_arrays(*[np.asarray(a, dtype=float) for a in args])
        out = np.empty(arrays[0].shape, dtype=float)
        flats = [a.ravel() for a in arrays]
        flat_out = out.ravel()
        for i in range(flat_out.size):
            flat_out[i] = scalar_fn(*(flat[i] for flat in flats))
        return out

    return reducer


#: Vectorised counterparts of :data:`repro.sbml.ast.FUNCTIONS`, bit-identical
#: to the scalar versions per element (see module docstring).
_VECTOR_FUNCTIONS = {
    "_vfn_exp": _elementwise(math.exp),
    "_vfn_ln": _elementwise(math.log),
    "_vfn_log": _elementwise(math.log),
    "_vfn_log10": _elementwise(math.log10),
    "_vfn_sqrt": np.sqrt,  # correctly rounded everywhere; matches math.sqrt
    "_vfn_abs": np.abs,
    "_vfn_floor": np.floor,
    "_vfn_ceil": np.ceil,
    "_vfn_min": _vfn_reduce(min),
    "_vfn_max": _vfn_reduce(max),
    "_vfn_pow": _vpow,
    "_vfn_hill_act": _vfn_hill_act,
    "_vfn_hill_rep": _vfn_hill_rep,
    "_vfn_piecewise": _vfn_piecewise,
}


def kernel_namespace() -> Dict[str, object]:
    """The execution namespace every generated kernel module runs in."""
    namespace: Dict[str, object] = {"np": np, "PropensityError": PropensityError}
    for name, (_, fn) in FUNCTIONS.items():
        namespace[f"_fn_{name}"] = fn
    namespace.update(_VECTOR_FUNCTIONS)
    namespace["_vpow"] = _vpow
    return namespace


class PropensityKernel:
    """The loaded (exec'd) kernels of one generated module."""

    __slots__ = (
        "source",
        "n_reactions",
        "n_species",
        "dependents",
        "propensities_all",
        "propensities_after",
        "propensities_batch",
    )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PropensityKernel(reactions={self.n_reactions}, species={self.n_species})"


def compile_kernel(source: str):
    """Byte-compile a generated kernel module (without executing it).

    Split out of :func:`load_kernel` because byte-compilation dominates
    kernel loading time: the ensemble engine compiles once in the parent and
    ships the marshalled code object to every worker, which then only pays
    the (microsecond) ``exec``.
    """
    try:
        return compile(source, "<repro-propensity-kernel>", "exec")
    except SyntaxError as error:
        raise PropensityError(f"invalid propensity kernel source: {error}") from error


def load_kernel(source: str, code=None) -> PropensityKernel:
    """``exec`` a generated kernel module and wrap its entry points.

    This is the only compilation work a pool worker performs when the parent
    ships kernel source alongside the pickled model: one ``exec`` replaces
    per-reaction AST analysis, per-reaction ``compile_function`` calls and
    the dependency-graph build.  ``code`` (a pre-compiled code object for
    exactly ``source``) skips even the byte-compilation.
    """
    namespace = kernel_namespace()
    if code is None:
        code = compile_kernel(source)
    exec(code, namespace)  # noqa: S102 - code generated from a validated AST
    if namespace.get("KERNEL_FORMAT") != KERNEL_FORMAT:
        raise PropensityError(
            "propensity kernel source has an incompatible format "
            f"(expected {KERNEL_FORMAT}, got {namespace.get('KERNEL_FORMAT')!r}); "
            "regenerate it from the model",
        )
    kernel = PropensityKernel()
    kernel.source = source
    kernel.n_reactions = int(namespace["N_REACTIONS"])
    kernel.n_species = int(namespace["N_SPECIES"])
    kernel.dependents = [list(deps) for deps in namespace["DEPENDENTS"]]
    kernel.propensities_all = namespace["propensities_all"]
    kernel.propensities_after = namespace["propensities_after"]
    kernel.propensities_batch = namespace["propensities_batch"]
    return kernel
