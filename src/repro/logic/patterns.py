"""Recognition of named gate behaviours.

One of the paper's two motivations for logic analysis is that it "helps in
extracting the Boolean logic of a circuit even when the user does not have
any prior knowledge about its expected behaviour".  Reporting that a
recovered truth table *is* a 3-input AND (the paper's observation for circuit
``0x0B`` at a 3-molecule threshold) is far more useful than printing a raw
expression, so this module matches truth tables against the standard n-input
gate families.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

from .truthtable import TruthTable

__all__ = ["GATE_FAMILIES", "identify_gate", "gate_truth_table", "is_named_gate"]


def _and(*bits: int) -> int:
    return int(all(bits))


def _or(*bits: int) -> int:
    return int(any(bits))


def _nand(*bits: int) -> int:
    return int(not all(bits))


def _nor(*bits: int) -> int:
    return int(not any(bits))


def _xor(*bits: int) -> int:
    return int(sum(bits) % 2 == 1)


def _xnor(*bits: int) -> int:
    return int(sum(bits) % 2 == 0)


def _buffer(*bits: int) -> int:
    return int(bits[0])


def _not(*bits: int) -> int:
    return int(not bits[0])


def _majority(*bits: int) -> int:
    return int(sum(bits) > len(bits) / 2)


def _minority(*bits: int) -> int:
    return int(sum(bits) < len(bits) / 2)


def _const_low(*bits: int) -> int:
    return 0


def _const_high(*bits: int) -> int:
    return 1


#: Gate family name -> (function over input bits, minimum input count).
GATE_FAMILIES: Dict[str, Tuple[Callable[..., int], int]] = {
    "CONST0": (_const_low, 1),
    "CONST1": (_const_high, 1),
    "BUF": (_buffer, 1),
    "NOT": (_not, 1),
    "AND": (_and, 2),
    "OR": (_or, 2),
    "NAND": (_nand, 2),
    "NOR": (_nor, 2),
    "XOR": (_xor, 2),
    "XNOR": (_xnor, 2),
    "MAJORITY": (_majority, 3),
    "MINORITY": (_minority, 3),
}

#: Recognition order: specific families before degenerate ones so that, e.g.,
#: a 2-input XNOR is reported as XNOR rather than anything else, and constants
#: are reported as constants.
_RECOGNITION_ORDER = [
    "CONST0",
    "CONST1",
    "BUF",
    "NOT",
    "AND",
    "OR",
    "NAND",
    "NOR",
    "XOR",
    "XNOR",
    "MAJORITY",
    "MINORITY",
]


def gate_truth_table(name: str, inputs: Sequence[str]) -> TruthTable:
    """The truth table of a named gate family over the given inputs."""
    key = name.upper()
    if key not in GATE_FAMILIES:
        raise KeyError(f"unknown gate family {name!r}")
    fn, minimum_inputs = GATE_FAMILIES[key]
    if len(inputs) < minimum_inputs:
        raise ValueError(
            f"gate {name!r} needs at least {minimum_inputs} inputs, got {len(inputs)}",
        )
    return TruthTable.from_function(fn, inputs)


def identify_gate(table: TruthTable) -> Optional[str]:
    """Name of the gate family matching ``table``, or None.

    For 1-input tables only BUF/NOT/constants can match; BUF and NOT of a
    specific input of a multi-input table are reported with the input index,
    e.g. ``"BUF(in2)"``.
    """
    for name in _RECOGNITION_ORDER:
        fn, minimum_inputs = GATE_FAMILIES[name]
        if table.n_inputs < minimum_inputs:
            continue
        if name in ("BUF", "NOT") and table.n_inputs > 1:
            continue  # handled below with explicit input attribution
        candidate = TruthTable.from_function(fn, table.inputs)
        if candidate.outputs == table.outputs:
            return name

    # Single-input dependence of a multi-input table: BUF/NOT of one input.
    if table.n_inputs > 1:
        for position, input_name in enumerate(table.inputs):
            buffer_outputs = []
            not_outputs = []
            for index in range(table.n_rows):
                bit = TruthTable.combination_bits(index, table.n_inputs)[position]
                buffer_outputs.append(bit)
                not_outputs.append(1 - bit)
            if table.outputs == buffer_outputs:
                return f"BUF({input_name})"
            if table.outputs == not_outputs:
                return f"NOT({input_name})"
    return None


def is_named_gate(table: TruthTable, name: str) -> bool:
    """True when ``table`` implements the named gate family over its inputs."""
    try:
        candidate = gate_truth_table(name, table.inputs)
    except (KeyError, ValueError):
        return False
    return candidate.outputs == table.outputs
