"""Boolean expression trees.

The output of the paper's algorithm is "the Boolean expression of the
circuit" — a sum-of-products over the input species recovered from the
filtered simulation data.  This module provides the expression representation
used throughout the package: construction (including from minterms), parsing
of a small infix syntax, evaluation, and rendering both in a programming
style (``A & ~B | C``) and in the paper's algebraic style (``AB' + C``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Mapping, Sequence, Tuple

from ..errors import ParseError

__all__ = [
    "BoolExpr",
    "Const",
    "Var",
    "Not",
    "And",
    "Or",
    "Xor",
    "parse_expr",
    "from_minterms",
    "minterm_string",
]


class BoolExpr:
    """Base class of Boolean expression nodes."""

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        """Evaluate under a ``{variable: 0/1-or-bool}`` assignment."""
        raise NotImplementedError

    def variables(self) -> List[str]:
        """Distinct variables in first-appearance order."""
        seen: List[str] = []
        self._collect(seen)
        return seen

    def _collect(self, seen: List[str]) -> None:
        raise NotImplementedError

    def to_string(self) -> str:
        """Render with ``& | ~`` operators (parseable by :func:`parse_expr`)."""
        raise NotImplementedError

    def to_algebraic(self) -> str:
        """Render in the paper's algebraic style: juxtaposition, ``+``, primes."""
        raise NotImplementedError

    # -- operator sugar so expressions compose naturally in user code --------
    def __and__(self, other: "BoolExpr") -> "BoolExpr":
        return And((self, other))

    def __or__(self, other: "BoolExpr") -> "BoolExpr":
        return Or((self, other))

    def __xor__(self, other: "BoolExpr") -> "BoolExpr":
        return Xor((self, other))

    def __invert__(self) -> "BoolExpr":
        return Not(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}({self.to_string()!r})"

    def __eq__(self, other: object) -> bool:
        """Structural equality (same rendered string).

        Semantic equivalence is checked through truth tables — see
        :meth:`repro.logic.truthtable.TruthTable.from_expression`.
        """
        return isinstance(other, BoolExpr) and self.to_string() == other.to_string()

    def __hash__(self) -> int:
        return hash(self.to_string())


@dataclass(frozen=True, eq=False)
class Const(BoolExpr):
    """Constant ``0`` or ``1``."""

    value: bool

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        return bool(self.value)

    def _collect(self, seen: List[str]) -> None:
        return None

    def to_string(self) -> str:
        return "1" if self.value else "0"

    def to_algebraic(self) -> str:
        return "1" if self.value else "0"


@dataclass(frozen=True, eq=False)
class Var(BoolExpr):
    """A named input variable (an input species of the circuit)."""

    name: str

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        try:
            return bool(assignment[self.name])
        except KeyError:
            raise ParseError(f"assignment is missing variable {self.name!r}") from None

    def _collect(self, seen: List[str]) -> None:
        if self.name not in seen:
            seen.append(self.name)

    def to_string(self) -> str:
        return self.name

    def to_algebraic(self) -> str:
        return self.name


@dataclass(frozen=True, eq=False)
class Not(BoolExpr):
    """Logical negation."""

    operand: BoolExpr

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        return not self.operand.evaluate(assignment)

    def _collect(self, seen: List[str]) -> None:
        self.operand._collect(seen)

    def to_string(self) -> str:
        inner = self.operand.to_string()
        if isinstance(self.operand, (Var, Const, Not)):
            return f"~{inner}"
        return f"~({inner})"

    def to_algebraic(self) -> str:
        inner = self.operand.to_algebraic()
        if isinstance(self.operand, (Var, Const)):
            return f"{inner}'"
        return f"({inner})'"


def _flatten(cls, operands: Iterable[BoolExpr]) -> Tuple[BoolExpr, ...]:
    flat: List[BoolExpr] = []
    for operand in operands:
        if isinstance(operand, cls):
            flat.extend(operand.operands)
        else:
            flat.append(operand)
    return tuple(flat)


@dataclass(frozen=True, eq=False)
class And(BoolExpr):
    """Conjunction of two or more operands (nested ANDs are flattened)."""

    operands: Tuple[BoolExpr, ...]

    def __post_init__(self) -> None:
        operands = _flatten(And, self.operands)
        if len(operands) < 1:
            raise ParseError("And requires at least one operand")
        object.__setattr__(self, "operands", operands)

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        return all(op.evaluate(assignment) for op in self.operands)

    def _collect(self, seen: List[str]) -> None:
        for op in self.operands:
            op._collect(seen)

    def to_string(self) -> str:
        parts = []
        for op in self.operands:
            text = op.to_string()
            if isinstance(op, (Or, Xor)):
                text = f"({text})"
            parts.append(text)
        return " & ".join(parts)

    def to_algebraic(self) -> str:
        parts = []
        for op in self.operands:
            text = op.to_algebraic()
            if isinstance(op, (Or, Xor)):
                text = f"({text})"
            parts.append(text)
        return ".".join(parts)


@dataclass(frozen=True, eq=False)
class Or(BoolExpr):
    """Disjunction of two or more operands (nested ORs are flattened)."""

    operands: Tuple[BoolExpr, ...]

    def __post_init__(self) -> None:
        operands = _flatten(Or, self.operands)
        if len(operands) < 1:
            raise ParseError("Or requires at least one operand")
        object.__setattr__(self, "operands", operands)

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        return any(op.evaluate(assignment) for op in self.operands)

    def _collect(self, seen: List[str]) -> None:
        for op in self.operands:
            op._collect(seen)

    def to_string(self) -> str:
        return " | ".join(op.to_string() for op in self.operands)

    def to_algebraic(self) -> str:
        return " + ".join(op.to_algebraic() for op in self.operands)


@dataclass(frozen=True, eq=False)
class Xor(BoolExpr):
    """Exclusive-or of two or more operands (true when an odd number are true)."""

    operands: Tuple[BoolExpr, ...]

    def __post_init__(self) -> None:
        operands = tuple(self.operands)
        if len(operands) < 2:
            raise ParseError("Xor requires at least two operands")
        object.__setattr__(self, "operands", operands)

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        return sum(bool(op.evaluate(assignment)) for op in self.operands) % 2 == 1

    def _collect(self, seen: List[str]) -> None:
        for op in self.operands:
            op._collect(seen)

    def to_string(self) -> str:
        parts = []
        for op in self.operands:
            text = op.to_string()
            if isinstance(op, (Or, And)):
                text = f"({text})"
            parts.append(text)
        return " ^ ".join(parts)

    def to_algebraic(self) -> str:
        return " xor ".join(op.to_algebraic() for op in self.operands)


# ---------------------------------------------------------------------------
# Construction helpers
# ---------------------------------------------------------------------------


def from_minterms(variables: Sequence[str], minterms: Iterable[int]) -> BoolExpr:
    """Sum-of-products expression covering exactly the given minterms.

    ``minterms`` are combination indices with ``variables[0]`` as the most
    significant bit, matching how the paper writes input combinations
    (``011`` means the first input low, the second and third high).
    """
    variables = list(variables)
    n = len(variables)
    minterms = sorted(set(int(m) for m in minterms))
    if not variables:
        raise ParseError("from_minterms requires at least one variable")
    for m in minterms:
        if not 0 <= m < 2**n:
            raise ParseError(f"minterm {m} out of range for {n} variables")
    if not minterms:
        return Const(False)
    if len(minterms) == 2**n:
        return Const(True)
    products: List[BoolExpr] = []
    for m in minterms:
        literals: List[BoolExpr] = []
        for bit_index, name in enumerate(variables):
            bit = (m >> (n - 1 - bit_index)) & 1
            literals.append(Var(name) if bit else Not(Var(name)))
        products.append(literals[0] if len(literals) == 1 else And(tuple(literals)))
    return products[0] if len(products) == 1 else Or(tuple(products))


def minterm_string(index: int, n_inputs: int) -> str:
    """Render a combination index as the paper writes it, e.g. ``"011"``."""
    if not 0 <= index < 2**n_inputs:
        raise ParseError(f"combination index {index} out of range for {n_inputs} inputs")
    return format(index, f"0{n_inputs}b")


# ---------------------------------------------------------------------------
# Parser for the ``& | ^ ~`` syntax
# ---------------------------------------------------------------------------


class _ExprParser:
    """Recursive-descent parser: ``|`` lowest, then ``^``, ``&``, ``~``."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = self._tokenize(text)
        self.index = 0

    @staticmethod
    def _tokenize(text: str) -> List[str]:
        tokens: List[str] = []
        i = 0
        while i < len(text):
            ch = text[i]
            if ch.isspace():
                i += 1
                continue
            if ch in "&|^~()!":
                tokens.append("~" if ch == "!" else ch)
                i += 1
                continue
            if ch.isalnum() or ch == "_":
                j = i
                while j < len(text) and (text[j].isalnum() or text[j] == "_"):
                    j += 1
                tokens.append(text[i:j])
                i = j
                continue
            raise ParseError(f"unexpected character {ch!r} in expression {text!r}")
        tokens.append("")  # end marker
        return tokens

    def _peek(self) -> str:
        return self.tokens[self.index]

    def _next(self) -> str:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def parse(self) -> BoolExpr:
        expr = self._parse_or()
        if self._peek() != "":
            raise ParseError(f"unexpected trailing token {self._peek()!r} in {self.text!r}")
        return expr

    def _parse_or(self) -> BoolExpr:
        operands = [self._parse_xor()]
        while self._peek() == "|":
            self._next()
            operands.append(self._parse_xor())
        return operands[0] if len(operands) == 1 else Or(tuple(operands))

    def _parse_xor(self) -> BoolExpr:
        operands = [self._parse_and()]
        while self._peek() == "^":
            self._next()
            operands.append(self._parse_and())
        return operands[0] if len(operands) == 1 else Xor(tuple(operands))

    def _parse_and(self) -> BoolExpr:
        operands = [self._parse_unary()]
        while self._peek() == "&":
            self._next()
            operands.append(self._parse_unary())
        return operands[0] if len(operands) == 1 else And(tuple(operands))

    def _parse_unary(self) -> BoolExpr:
        token = self._peek()
        if token == "~":
            self._next()
            return Not(self._parse_unary())
        if token == "(":
            self._next()
            inner = self._parse_or()
            if self._next() != ")":
                raise ParseError(f"missing ')' in expression {self.text!r}")
            return inner
        if token == "":
            raise ParseError(f"unexpected end of expression in {self.text!r}")
        self._next()
        if token == "0":
            return Const(False)
        if token == "1":
            return Const(True)
        if not (token[0].isalpha() or token[0] == "_"):
            raise ParseError(f"bad variable name {token!r} in {self.text!r}")
        return Var(token)


def parse_expr(text: str) -> BoolExpr:
    """Parse an expression written with ``& | ^ ~ ( )`` and variable names."""
    if isinstance(text, BoolExpr):
        return text
    if not isinstance(text, str) or not text.strip():
        raise ParseError("expression must be a non-empty string")
    return _ExprParser(text).parse()
