"""Comparison of expected versus recovered circuit logic.

The verification half of the paper: given the Boolean behaviour a designer
*intended* (from the circuit netlist or its Cello name) and the behaviour the
analysis algorithm *recovered* from stochastic traces, report whether they
match and, when they do not, which input combinations are wrong — the paper
reports, e.g., that circuit ``0x0B`` driven with a 40-molecule threshold "has
two wrong states".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .patterns import identify_gate
from .truthtable import TruthTable

__all__ = ["LogicComparison", "compare_tables", "verify_against_expected"]


@dataclass
class LogicComparison:
    """Outcome of comparing a recovered truth table against an expected one."""

    expected: TruthTable
    recovered: TruthTable
    matches: bool
    wrong_states: List[str] = field(default_factory=list)
    expected_gate: Optional[str] = None
    recovered_gate: Optional[str] = None

    @property
    def n_wrong_states(self) -> int:
        return len(self.wrong_states)

    def summary(self) -> str:
        """One-line human readable verdict."""
        if self.matches:
            verdict = "MATCH"
            detail = ""
        else:
            verdict = "MISMATCH"
            detail = f" (wrong states: {', '.join(self.wrong_states)})"
        expected_name = self.expected_gate or self.expected.to_hex()
        recovered_name = self.recovered_gate or self.recovered.to_hex()
        return f"{verdict}: expected {expected_name}, recovered {recovered_name}{detail}"


def compare_tables(expected: TruthTable, recovered: TruthTable) -> LogicComparison:
    """Compare two truth tables combination by combination."""
    wrong = expected.differing_combinations(recovered)
    return LogicComparison(
        expected=expected,
        recovered=recovered,
        matches=not wrong,
        wrong_states=wrong,
        expected_gate=identify_gate(expected),
        recovered_gate=identify_gate(recovered),
    )


def verify_against_expected(expected, recovered) -> LogicComparison:
    """Convenience wrapper accepting expressions, hex names or tables.

    ``expected`` / ``recovered`` may each be a :class:`TruthTable`, a Boolean
    expression (string or :class:`~repro.logic.boolexpr.BoolExpr`), or a
    Cello-style hexadecimal name (string starting with ``0x``).
    """
    expected_table = _coerce(expected)
    recovered_table = _coerce(recovered, like=expected_table)
    return compare_tables(expected_table, recovered_table)


def _coerce(value, like: Optional[TruthTable] = None) -> TruthTable:
    if isinstance(value, TruthTable):
        return value
    if isinstance(value, str) and value.lower().startswith("0x"):
        if like is not None:
            return TruthTable.from_hex(value, inputs=like.inputs)
        return TruthTable.from_hex(value)
    inputs = like.inputs if like is not None else None
    return TruthTable.from_expression(value, inputs=inputs)
