"""Quine–McCluskey two-level minimization.

The algorithm's raw output — the set of input combinations whose filtered
output is high — is a list of minterms.  Presenting that list as a readable
Boolean expression (the paper prints, e.g., ``A'.B.C`` for circuit ``0x0B``)
requires two-level minimization; this module implements the classic
Quine–McCluskey procedure with essential-prime-implicant extraction followed
by a greedy cover of the remainder (Petrick's method is unnecessary at n ≤ 6
inputs, far beyond the paper's 3-input circuits, but the greedy cover is
exact whenever the essential primes already cover everything — which is the
common case for genetic circuits).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence, Set

from ..errors import AnalysisError
from .boolexpr import And, BoolExpr, Const, Not, Or, Var

__all__ = [
    "Implicant",
    "prime_implicants",
    "minimal_cover",
    "minimize",
    "minimize_truth_table",
]


class Implicant:
    """A product term covering one or more minterms.

    ``value`` holds the fixed bits, ``mask`` marks the "don't care" positions
    (bit set = that input does not appear in the product).  Bit 0 of both is
    the *last* input, matching the combination-index convention.
    """

    __slots__ = ("value", "mask", "n_inputs", "covers")

    def __init__(self, value: int, mask: int, n_inputs: int, covers: FrozenSet[int]):
        self.value = value
        self.mask = mask
        self.n_inputs = n_inputs
        self.covers = covers

    @classmethod
    def from_minterm(cls, minterm: int, n_inputs: int) -> "Implicant":
        return cls(minterm, 0, n_inputs, frozenset({minterm}))

    def can_combine(self, other: "Implicant") -> bool:
        """True when the two implicants differ in exactly one fixed bit."""
        if self.mask != other.mask:
            return False
        difference = self.value ^ other.value
        return difference != 0 and (difference & (difference - 1)) == 0

    def combine(self, other: "Implicant") -> "Implicant":
        difference = self.value ^ other.value
        return Implicant(
            self.value & ~difference,
            self.mask | difference,
            self.n_inputs,
            self.covers | other.covers,
        )

    def covers_minterm(self, minterm: int) -> bool:
        return (minterm & ~self.mask) == (self.value & ~self.mask)

    def literal_count(self) -> int:
        """Number of literals in the product term."""
        return self.n_inputs - bin(self.mask).count("1")

    def pattern(self) -> str:
        """Textbook pattern string, e.g. ``"1-0"`` (first input is leftmost)."""
        chars = []
        for position in range(self.n_inputs - 1, -1, -1):
            if (self.mask >> position) & 1:
                chars.append("-")
            else:
                chars.append("1" if (self.value >> position) & 1 else "0")
        return "".join(chars)

    def to_expression(self, variables: Sequence[str]) -> BoolExpr:
        """The product term as a :class:`BoolExpr` over ``variables``."""
        if len(variables) != self.n_inputs:
            raise AnalysisError("variable list does not match implicant width")
        literals: List[BoolExpr] = []
        for index, name in enumerate(variables):
            position = self.n_inputs - 1 - index
            if (self.mask >> position) & 1:
                continue
            if (self.value >> position) & 1:
                literals.append(Var(name))
            else:
                literals.append(Not(Var(name)))
        if not literals:
            return Const(True)
        if len(literals) == 1:
            return literals[0]
        return And(tuple(literals))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Implicant)
            and self.value == other.value
            and self.mask == other.mask
            and self.n_inputs == other.n_inputs
        )

    def __hash__(self) -> int:
        return hash((self.value, self.mask, self.n_inputs))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Implicant({self.pattern()!r})"


def prime_implicants(
    n_inputs: int,
    minterms: Iterable[int],
    dont_cares: Iterable[int] = (),
) -> List[Implicant]:
    """All prime implicants of the function defined by minterms ∪ don't-cares."""
    minterms = set(int(m) for m in minterms)
    dont_cares = set(int(m) for m in dont_cares)
    overlap = minterms & dont_cares
    if overlap:
        raise AnalysisError(f"minterms and don't-cares overlap: {sorted(overlap)}")
    all_terms = minterms | dont_cares
    for term in all_terms:
        if not 0 <= term < 2**n_inputs:
            raise AnalysisError(f"term {term} out of range for {n_inputs} inputs")
    if not all_terms:
        return []

    current = {Implicant.from_minterm(m, n_inputs) for m in all_terms}
    primes: Set[Implicant] = set()
    while current:
        combined: Set[Implicant] = set()
        used: Set[Implicant] = set()
        current_list = sorted(current, key=lambda imp: (imp.mask, imp.value))
        for i, left in enumerate(current_list):
            for right in current_list[i + 1 :]:
                if left.can_combine(right):
                    combined.add(left.combine(right))
                    used.add(left)
                    used.add(right)
        primes.update(imp for imp in current if imp not in used)
        current = combined
    return sorted(primes, key=lambda imp: (imp.literal_count(), imp.value))


def _select_cover(primes: List[Implicant], minterms: Set[int]) -> List[Implicant]:
    """Essential primes first, then a greedy cover of what remains."""
    remaining = set(minterms)
    chosen: List[Implicant] = []

    # Essential prime implicants: the only prime covering some minterm.
    changed = True
    while changed and remaining:
        changed = False
        for minterm in sorted(remaining):
            covering = [p for p in primes if p.covers_minterm(minterm)]
            if len(covering) == 1:
                prime = covering[0]
                if prime not in chosen:
                    chosen.append(prime)
                remaining -= {m for m in remaining if prime.covers_minterm(m)}
                changed = True
                break

    # Greedy cover for the rest: repeatedly take the prime covering the most
    # still-uncovered minterms (ties broken by fewer literals).
    while remaining:
        best = max(
            primes,
            key=lambda p: (
                len({m for m in remaining if p.covers_minterm(m)}),
                -p.literal_count(),
            ),
        )
        covered_now = {m for m in remaining if best.covers_minterm(m)}
        if not covered_now:
            raise AnalysisError("prime implicants do not cover all minterms")
        chosen.append(best)
        remaining -= covered_now
    return chosen


def minimal_cover(
    n_inputs: int,
    minterms: Iterable[int],
    dont_cares: Iterable[int] = (),
) -> List[Implicant]:
    """A minimal (essential + greedy) prime-implicant cover of the minterms.

    This is the structural form the gate-synthesis module consumes: each
    implicant becomes one product term of the two-level implementation.
    """
    minterms = set(int(m) for m in minterms)
    if not minterms:
        return []
    primes = prime_implicants(n_inputs, minterms, dont_cares)
    cover = _select_cover(primes, minterms)
    cover.sort(key=lambda imp: (imp.value & ~imp.mask, imp.mask))
    return cover


def minimize(
    n_inputs: int,
    minterms: Iterable[int],
    dont_cares: Iterable[int] = (),
    variables: Optional[Sequence[str]] = None,
) -> BoolExpr:
    """Minimized sum-of-products expression for the given minterms."""
    minterms = set(int(m) for m in minterms)
    dont_cares = set(int(m) for m in dont_cares)
    if variables is None:
        variables = [f"in{i + 1}" for i in range(n_inputs)]
    variables = list(variables)
    if len(variables) != n_inputs:
        raise AnalysisError("minimize needs exactly one variable name per input")

    if not minterms:
        return Const(False)
    if len(minterms | dont_cares) == 2**n_inputs and len(minterms) > 0:
        # Everything that is not a don't-care is a minterm: constant 1.
        if not (set(range(2**n_inputs)) - minterms - dont_cares):
            return Const(True)

    primes = prime_implicants(n_inputs, minterms, dont_cares)
    cover = _select_cover(primes, minterms)
    cover.sort(key=lambda imp: (imp.value & ~imp.mask, imp.mask))
    terms = [imp.to_expression(variables) for imp in cover]
    if len(terms) == 1:
        return terms[0]
    return Or(tuple(terms))


def minimize_truth_table(table) -> BoolExpr:
    """Minimized expression of a :class:`repro.logic.truthtable.TruthTable`."""
    return minimize(table.n_inputs, table.minterms(), variables=table.inputs)
