"""Boolean logic toolkit: expressions, truth tables, minimization, comparison."""

from .boolexpr import (
    And,
    BoolExpr,
    Const,
    Not,
    Or,
    Var,
    Xor,
    from_minterms,
    minterm_string,
    parse_expr,
)
from .compare import LogicComparison, compare_tables, verify_against_expected
from .minimize import Implicant, minimize, minimize_truth_table, prime_implicants
from .patterns import GATE_FAMILIES, gate_truth_table, identify_gate, is_named_gate
from .truthtable import TruthTable

__all__ = [
    "BoolExpr",
    "Const",
    "Var",
    "Not",
    "And",
    "Or",
    "Xor",
    "parse_expr",
    "from_minterms",
    "minterm_string",
    "TruthTable",
    "Implicant",
    "prime_implicants",
    "minimize",
    "minimize_truth_table",
    "GATE_FAMILIES",
    "identify_gate",
    "gate_truth_table",
    "is_named_gate",
    "LogicComparison",
    "compare_tables",
    "verify_against_expected",
]
