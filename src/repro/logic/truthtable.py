"""Truth tables for n-input genetic logic circuits.

Conventions (used consistently across the package and documented in the
README):

* Input combinations are indexed by interpreting the input vector as a binary
  number with the *first* input as the most significant bit; combination
  ``011`` of a 3-input circuit therefore has index 3 — exactly how the paper
  writes combinations along the x-axis of its figures.
* The Cello-style hexadecimal circuit names (``0x0B``, ``0x04``, ``0x1C``)
  encode the output column: bit ``i`` (counting from the least significant
  bit) of the hexadecimal value is the output for combination index ``i``.
  ``0x0B = 0b00001011`` is therefore high for combinations ``000``, ``001``
  and ``011``.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from ..errors import AnalysisError
from .boolexpr import BoolExpr, from_minterms, minterm_string, parse_expr

__all__ = ["TruthTable"]


def _default_inputs(count: int) -> List[str]:
    """Generic input names in1..inN (used when the caller supplies none)."""
    return [f"in{i + 1}" for i in range(count)]


class TruthTable:
    """The complete input/output behaviour of an n-input, 1-output circuit."""

    def __init__(self, inputs: Sequence[str], outputs: Sequence[int]):
        self.inputs = list(inputs)
        if not self.inputs:
            raise AnalysisError("a truth table needs at least one input")
        if len(set(self.inputs)) != len(self.inputs):
            raise AnalysisError("input names must be distinct")
        expected_rows = 2 ** len(self.inputs)
        outputs = [int(bool(int(v))) for v in outputs]
        if len(outputs) != expected_rows:
            raise AnalysisError(
                f"a {len(self.inputs)}-input truth table needs {expected_rows} output "
                f"rows, got {len(outputs)}",
            )
        self.outputs = outputs

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_hex(
        cls,
        value,
        inputs: Optional[Sequence[str]] = None,
        n_inputs: int = 3,
    ) -> "TruthTable":
        """Build a table from a Cello-style hexadecimal circuit name.

        ``value`` may be an int or a string like ``"0x0B"``.  ``n_inputs`` is
        only used when ``inputs`` is not given.
        """
        if isinstance(value, str):
            value = int(value, 16)
        value = int(value)
        if inputs is None:
            inputs = _default_inputs(n_inputs)
        inputs = list(inputs)
        rows = 2 ** len(inputs)
        if not 0 <= value < 2**rows:
            raise AnalysisError(
                f"hex value {value:#x} does not fit a {len(inputs)}-input truth table",
            )
        outputs = [(value >> i) & 1 for i in range(rows)]
        return cls(inputs, outputs)

    @classmethod
    def from_function(cls, fn: Callable[..., int], inputs: Sequence[str]) -> "TruthTable":
        """Build a table by evaluating ``fn(bit1, bit2, ...)`` on every combination."""
        inputs = list(inputs)
        rows = 2 ** len(inputs)
        outputs = []
        for index in range(rows):
            bits = cls.combination_bits(index, len(inputs))
            outputs.append(int(bool(fn(*bits))))
        return cls(inputs, outputs)

    @classmethod
    def from_expression(cls, expression, inputs: Optional[Sequence[str]] = None) -> "TruthTable":
        """Build a table from a :class:`BoolExpr` or an expression string."""
        expr = parse_expr(expression) if isinstance(expression, str) else expression
        if inputs is None:
            inputs = expr.variables()
            if not inputs:
                raise AnalysisError(
                    "cannot infer inputs from a constant expression; pass `inputs`",
                )
        inputs = list(inputs)
        rows = 2 ** len(inputs)
        outputs = []
        for index in range(rows):
            bits = cls.combination_bits(index, len(inputs))
            assignment = dict(zip(inputs, bits))
            outputs.append(int(expr.evaluate(assignment)))
        return cls(inputs, outputs)

    @classmethod
    def from_minterm_indices(
        cls,
        minterms: Iterable[int],
        inputs: Sequence[str],
    ) -> "TruthTable":
        """Build a table that is high exactly on the given combination indices."""
        inputs = list(inputs)
        rows = 2 ** len(inputs)
        minterms = set(int(m) for m in minterms)
        for m in minterms:
            if not 0 <= m < rows:
                raise AnalysisError(f"minterm {m} out of range for {len(inputs)} inputs")
        return cls(inputs, [1 if i in minterms else 0 for i in range(rows)])

    # -- static helpers -------------------------------------------------------
    @staticmethod
    def combination_bits(index: int, n_inputs: int) -> Tuple[int, ...]:
        """Bits of a combination index, first input = most significant bit."""
        return tuple((index >> (n_inputs - 1 - i)) & 1 for i in range(n_inputs))

    @staticmethod
    def combination_index(bits: Sequence[int]) -> int:
        """Inverse of :meth:`combination_bits`."""
        index = 0
        for bit in bits:
            index = (index << 1) | (1 if bit else 0)
        return index

    # -- basic queries ---------------------------------------------------------
    @property
    def n_inputs(self) -> int:
        return len(self.inputs)

    @property
    def n_rows(self) -> int:
        return len(self.outputs)

    def output_for(self, combination) -> int:
        """Output for a combination given as an index, bit tuple, or string ``"011"``."""
        index = self._as_index(combination)
        return self.outputs[index]

    def _as_index(self, combination) -> int:
        if isinstance(combination, str):
            if len(combination) != self.n_inputs or set(combination) - {"0", "1"}:
                raise AnalysisError(
                    f"combination string {combination!r} does not match {self.n_inputs} inputs",
                )
            return int(combination, 2)
        if isinstance(combination, (tuple, list)):
            if len(combination) != self.n_inputs:
                raise AnalysisError(
                    f"combination {combination!r} does not match {self.n_inputs} inputs",
                )
            return self.combination_index(combination)
        index = int(combination)
        if not 0 <= index < self.n_rows:
            raise AnalysisError(f"combination index {index} out of range")
        return index

    def minterms(self) -> List[int]:
        """Combination indices with output 1."""
        return [i for i, value in enumerate(self.outputs) if value]

    def maxterms(self) -> List[int]:
        """Combination indices with output 0."""
        return [i for i, value in enumerate(self.outputs) if not value]

    def combination_labels(self) -> List[str]:
        """All combinations as strings (``"00"``, ``"01"``, ...)."""
        return [minterm_string(i, self.n_inputs) for i in range(self.n_rows)]

    # -- conversions -----------------------------------------------------------
    def to_hex(self) -> str:
        """The Cello-style hexadecimal name of this table (e.g. ``"0x0B"``)."""
        value = 0
        for index, output in enumerate(self.outputs):
            if output:
                value |= 1 << index
        width = max(2, (self.n_rows + 3) // 4)
        return f"0x{value:0{width}X}"

    def to_expression(self) -> BoolExpr:
        """Canonical (unminimized) sum-of-products expression."""
        return from_minterms(self.inputs, self.minterms())

    def to_minimized_expression(self) -> BoolExpr:
        """Quine–McCluskey minimized sum-of-products expression."""
        from .minimize import minimize_truth_table

        return minimize_truth_table(self)

    def rename_inputs(self, names: Sequence[str]) -> "TruthTable":
        """Same behaviour, different input names (lengths must match)."""
        names = list(names)
        if len(names) != self.n_inputs:
            raise AnalysisError("rename_inputs needs exactly one name per input")
        return TruthTable(names, list(self.outputs))

    # -- comparisons -----------------------------------------------------------
    def equivalent(self, other: "TruthTable") -> bool:
        """True when both tables have identical output columns.

        The comparison is positional: input *names* may differ (a recovered
        table names inputs after species, the specification may use generic
        names) but the number of inputs must match.
        """
        return self.n_inputs == other.n_inputs and self.outputs == other.outputs

    def differing_combinations(self, other: "TruthTable") -> List[str]:
        """Combination strings on which the two tables disagree.

        This is the paper's notion of "wrong states" — circuit ``0x0B`` run
        with a 40-molecule threshold recovers a table with two wrong states.
        """
        if self.n_inputs != other.n_inputs:
            raise AnalysisError("cannot compare truth tables with different input counts")
        return [
            minterm_string(i, self.n_inputs)
            for i in range(self.n_rows)
            if self.outputs[i] != other.outputs[i]
        ]

    def hamming_distance(self, other: "TruthTable") -> int:
        """Number of combinations on which the two tables disagree."""
        return len(self.differing_combinations(other))

    # -- dunder ----------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TruthTable)
            and self.inputs == other.inputs
            and self.outputs == other.outputs
        )

    def __hash__(self) -> int:
        return hash((tuple(self.inputs), tuple(self.outputs)))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"TruthTable(inputs={self.inputs}, hex={self.to_hex()})"

    def format(self, output_name: str = "out") -> str:
        """Human-readable table, one row per combination."""
        header = " ".join(self.inputs) + f" | {output_name}"
        rows = [header, "-" * len(header)]
        for index in range(self.n_rows):
            bits = self.combination_bits(index, self.n_inputs)
            bit_text = " ".join(str(bit).rjust(len(name)) for name, bit in zip(self.inputs, bits))
            rows.append(f"{bit_text} | {self.outputs[index]}")
        return "\n".join(rows)
