"""Interchange formats: CSV data logs and JSON analysis results."""

from .csvlog import (
    read_datalog_csv,
    read_trajectory_csv,
    write_datalog_csv,
    write_trajectory_csv,
)
from .results import load_result_dict, result_to_dict, result_to_json, save_result_json

__all__ = [
    "write_trajectory_csv",
    "read_trajectory_csv",
    "write_datalog_csv",
    "read_datalog_csv",
    "result_to_dict",
    "result_to_json",
    "save_result_json",
    "load_result_dict",
]
