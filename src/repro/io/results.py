"""JSON-friendly serialization of analysis results.

Benchmarks and the CLI persist their outcomes as plain dictionaries / JSON so
that downstream tooling (or EXPERIMENTS.md updates) can consume them without
importing the library.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from ..core.analyzer import CombinationAnalysis, LogicAnalysisResult
from ..errors import ParseError

__all__ = ["result_to_dict", "result_to_json", "save_result_json", "load_result_dict"]


def _combination_to_dict(combination: CombinationAnalysis) -> Dict[str, Any]:
    return {
        "index": combination.index,
        "label": combination.label,
        "case_count": combination.case_count,
        "high_count": combination.high_count,
        "variation_count": combination.variation_count,
        "fov_est": combination.fov_est,
        "passes_fov": combination.passes_fov,
        "passes_majority": combination.passes_majority,
        "is_high": combination.is_high,
    }


def result_to_dict(result: LogicAnalysisResult) -> Dict[str, Any]:
    """Flatten a :class:`LogicAnalysisResult` into JSON-compatible types."""
    payload: Dict[str, Any] = {
        "circuit_name": result.circuit_name,
        "input_species": list(result.input_species),
        "output_species": result.output_species,
        "threshold": result.threshold,
        "fov_ud": result.fov_ud,
        "expression": result.expression.to_string(),
        "expression_algebraic": result.expression.to_algebraic(),
        "canonical_expression": result.canonical_expression.to_string(),
        "truth_table_hex": result.truth_table.to_hex(),
        "truth_table_outputs": list(result.truth_table.outputs),
        "fitness_percent": result.fitness,
        "gate_name": result.gate_name,
        "analysis_time_seconds": result.analysis_time_seconds,
        "n_samples": result.n_samples,
        "high_combinations": result.high_combination_labels,
        "unobserved_combinations": result.unobserved_combinations,
        "combinations": [_combination_to_dict(c) for c in result.combinations],
    }
    if result.comparison is not None:
        payload["verification"] = {
            "matches": result.comparison.matches,
            "wrong_states": list(result.comparison.wrong_states),
            "expected_hex": result.comparison.expected.to_hex(),
            "recovered_hex": result.comparison.recovered.to_hex(),
            "expected_gate": result.comparison.expected_gate,
            "recovered_gate": result.comparison.recovered_gate,
        }
    return payload


def result_to_json(result: LogicAnalysisResult, indent: int = 2) -> str:
    """Serialize a result to a JSON string."""
    return json.dumps(result_to_dict(result), indent=indent, sort_keys=True)


def save_result_json(result: LogicAnalysisResult, path) -> None:
    """Write a result to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(result_to_json(result))
        handle.write("\n")


def load_result_dict(path) -> Dict[str, Any]:
    """Load a previously saved result dictionary (no object reconstruction)."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            return json.load(handle)
        except json.JSONDecodeError as exc:
            raise ParseError(f"{path} is not valid JSON: {exc}") from exc
