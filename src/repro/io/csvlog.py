"""CSV serialization of simulation data logs.

The paper's workflow logs "all experimental simulation data" from the
simulator and feeds the log to the analysis algorithm.  This module provides
that interchange format: a plain CSV with one row per sample, one column per
recorded species, plus one ``applied:<species>`` column per input species
holding the clamp level the virtual laboratory applied at that sample.  The
header carries enough metadata (input/output species, clamp levels) for
:func:`read_datalog_csv` to rebuild a complete
:class:`~repro.vlab.datalog.SimulationDataLog`.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, List, TextIO

import numpy as np

from ..errors import ParseError
from ..stochastic.trajectory import Trajectory
from ..vlab.datalog import SimulationDataLog

__all__ = ["write_datalog_csv", "read_datalog_csv", "write_trajectory_csv", "read_trajectory_csv"]

_APPLIED_PREFIX = "applied:"
_META_PREFIX = "#meta:"


def write_trajectory_csv(trajectory: Trajectory, path_or_handle) -> None:
    """Write a bare trajectory (time + species columns) as CSV."""
    close = False
    handle: TextIO
    if hasattr(path_or_handle, "write"):
        handle = path_or_handle
    else:
        handle = open(path_or_handle, "w", newline="", encoding="utf-8")
        close = True
    try:
        writer = csv.writer(handle)
        writer.writerow(["time"] + list(trajectory.species))
        for i, t in enumerate(trajectory.times):
            writer.writerow([repr(float(t))] + [repr(float(v)) for v in trajectory.data[i]])
    finally:
        if close:
            handle.close()


def read_trajectory_csv(path_or_handle) -> Trajectory:
    """Read a bare trajectory CSV written by :func:`write_trajectory_csv`."""
    close = False
    if hasattr(path_or_handle, "read"):
        handle = path_or_handle
    else:
        handle = open(path_or_handle, "r", newline="", encoding="utf-8")
        close = True
    try:
        reader = csv.reader(row for row in handle if not row.startswith(_META_PREFIX))
        header = next(reader, None)
        if not header or header[0] != "time":
            raise ParseError("trajectory CSV must start with a 'time' column")
        species = header[1:]
        times: List[float] = []
        rows: List[List[float]] = []
        for row in reader:
            if not row:
                continue
            times.append(float(row[0]))
            rows.append([float(v) for v in row[1:]])
        return Trajectory(np.asarray(times), species, np.asarray(rows, dtype=float))
    finally:
        if close:
            handle.close()


def write_datalog_csv(log: SimulationDataLog, path_or_handle) -> None:
    """Write a complete simulation data log (the algorithm's ``SDAn``) as CSV."""
    close = False
    if hasattr(path_or_handle, "write"):
        handle = path_or_handle
    else:
        handle = open(path_or_handle, "w", newline="", encoding="utf-8")
        close = True
    try:
        handle.write(f"{_META_PREFIX}circuit={log.circuit_name}\n")
        handle.write(f"{_META_PREFIX}inputs={','.join(log.input_species)}\n")
        handle.write(f"{_META_PREFIX}output={log.output_species}\n")
        handle.write(f"{_META_PREFIX}input_high={log.input_high!r}\n")
        handle.write(f"{_META_PREFIX}input_low={log.input_low!r}\n")
        if log.hold_time is not None:
            handle.write(f"{_META_PREFIX}hold_time={log.hold_time!r}\n")
        writer = csv.writer(handle)
        applied_columns = [f"{_APPLIED_PREFIX}{sid}" for sid in log.input_species]
        writer.writerow(["time"] + list(log.trajectory.species) + applied_columns)
        for i, t in enumerate(log.trajectory.times):
            row = [repr(float(t))]
            row.extend(repr(float(v)) for v in log.trajectory.data[i])
            row.extend(repr(float(log.applied_inputs[sid][i])) for sid in log.input_species)
            writer.writerow(row)
    finally:
        if close:
            handle.close()


def read_datalog_csv(path_or_handle) -> SimulationDataLog:
    """Read a data-log CSV written by :func:`write_datalog_csv`."""
    close = False
    if hasattr(path_or_handle, "read"):
        handle = path_or_handle
    else:
        handle = open(path_or_handle, "r", newline="", encoding="utf-8")
        close = True
    try:
        metadata: Dict[str, str] = {}
        data_lines: List[str] = []
        for line in handle:
            if line.startswith(_META_PREFIX):
                key, _, value = line[len(_META_PREFIX) :].strip().partition("=")
                metadata[key] = value
            elif line.strip():
                data_lines.append(line)
        if "inputs" not in metadata or "output" not in metadata:
            raise ParseError("data-log CSV is missing its #meta: inputs/output header lines")
        reader = csv.reader(io.StringIO("".join(data_lines)))
        header = next(reader, None)
        if not header or header[0] != "time":
            raise ParseError("data-log CSV must start with a 'time' column")
        species = [name for name in header[1:] if not name.startswith(_APPLIED_PREFIX)]
        applied_names = [
            name[len(_APPLIED_PREFIX) :]
            for name in header[1:]
            if name.startswith(_APPLIED_PREFIX)
        ]
        times: List[float] = []
        rows: List[List[float]] = []
        applied_rows: List[List[float]] = []
        for row in reader:
            if not row:
                continue
            times.append(float(row[0]))
            values = [float(v) for v in row[1:]]
            rows.append(values[: len(species)])
            applied_rows.append(values[len(species) :])
        trajectory = Trajectory(np.asarray(times), species, np.asarray(rows, dtype=float))
        applied_matrix = np.asarray(applied_rows, dtype=float)
        applied = {
            name: applied_matrix[:, i] for i, name in enumerate(applied_names)
        }
        input_species = [s for s in metadata["inputs"].split(",") if s]
        hold_time = float(metadata["hold_time"]) if "hold_time" in metadata else None
        return SimulationDataLog(
            trajectory=trajectory,
            input_species=input_species,
            output_species=metadata["output"],
            applied_inputs=applied,
            input_high=float(metadata.get("input_high", 40.0)),
            input_low=float(metadata.get("input_low", 0.0)),
            hold_time=hold_time,
            circuit_name=metadata.get("circuit", ""),
        )
    finally:
        if close:
            handle.close()
