"""SBML Level 3 (core subset) models: representation, parsing and writing.

This package is the model substrate of the reproduction: genetic circuits are
expressed as reaction networks with kinetic laws, exactly as the SBML models
the paper simulates in D-VASim.
"""

from .ast import (
    BinOp,
    Call,
    Expr,
    Neg,
    Num,
    Sym,
    compile_function,
    from_mathml,
    parse,
    to_mathml,
)
from .model import (
    Compartment,
    KineticLaw,
    Model,
    Parameter,
    Reaction,
    Species,
    SpeciesReference,
    is_valid_sid,
)
from .reader import read_sbml_file, read_sbml_string
from .validation import check_model, validate_model
from .writer import write_sbml_file, write_sbml_string

__all__ = [
    "Expr",
    "Num",
    "Sym",
    "BinOp",
    "Neg",
    "Call",
    "parse",
    "compile_function",
    "to_mathml",
    "from_mathml",
    "Compartment",
    "Species",
    "Parameter",
    "SpeciesReference",
    "KineticLaw",
    "Reaction",
    "Model",
    "is_valid_sid",
    "read_sbml_string",
    "read_sbml_file",
    "write_sbml_string",
    "write_sbml_file",
    "validate_model",
    "check_model",
]
