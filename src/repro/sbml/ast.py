"""Math expression AST used by SBML kinetic laws and propensity compilation.

SBML expresses kinetic laws as MathML; D-VASim and most scripting front-ends
use plain infix strings.  This module provides a small, self-contained
expression language that supports both:

* :func:`parse` turns an infix string (``"kmax * 1 / (1 + (LacI/K)^n)"``)
  into an :class:`Expr` tree,
* :meth:`Expr.evaluate` evaluates a tree against a ``{name: value}``
  environment,
* :meth:`Expr.to_infix` and :func:`to_mathml` / :func:`from_mathml`
  serialize trees to infix text and to the MathML subset used by the SBML
  reader/writer,
* :func:`compile_function` generates a fast Python callable for repeated
  evaluation inside the stochastic simulators.

The language supports ``+ - * / ^``, unary minus, parentheses, numeric
literals, identifiers, and a fixed set of named functions (``exp``, ``ln``,
``log``, ``log10``, ``sqrt``, ``abs``, ``floor``, ``ceil``, ``min``, ``max``,
``pow``, ``hill_act``, ``hill_rep``, ``piecewise``).  ``hill_act(x, K, n)``
and ``hill_rep(x, K, n)`` are convenience functions for Hill activation and
repression, the workhorses of genetic gate models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence, Tuple, Union

from ..errors import MathParseError, PropensityError

__all__ = [
    "Expr",
    "Num",
    "Sym",
    "BinOp",
    "Neg",
    "Call",
    "parse",
    "compile_function",
    "to_mathml",
    "from_mathml",
    "FUNCTIONS",
]


def _hill_act(x: float, k: float, n: float) -> float:
    """Hill activation: ``x^n / (K^n + x^n)`` (0 when x == 0)."""
    if x <= 0.0:
        return 0.0
    xn = x**n
    return xn / (k**n + xn)


def _hill_rep(x: float, k: float, n: float) -> float:
    """Hill repression: ``K^n / (K^n + x^n)`` (1 when x == 0)."""
    if x <= 0.0:
        return 1.0
    kn = k**n
    return kn / (kn + x**n)


def _piecewise(*args: float) -> float:
    """SBML-style piecewise: ``piecewise(v1, c1, v2, c2, ..., otherwise)``."""
    i = 0
    while i + 1 < len(args):
        if args[i + 1]:
            return args[i]
        i += 2
    if i < len(args):
        return args[i]
    return 0.0


#: Named functions usable inside expressions.  Values are
#: ``(arity, python_callable)``; arity ``-1`` means variadic.
FUNCTIONS: Dict[str, Tuple[int, Callable[..., float]]] = {
    "exp": (1, math.exp),
    "ln": (1, math.log),
    "log": (1, math.log),
    "log10": (1, math.log10),
    "sqrt": (1, math.sqrt),
    "abs": (1, abs),
    "floor": (1, math.floor),
    "ceil": (1, math.ceil),
    "min": (-1, min),
    "max": (-1, max),
    "pow": (2, pow),
    "hill_act": (3, _hill_act),
    "hill_rep": (3, _hill_rep),
    "piecewise": (-1, _piecewise),
}


class Expr:
    """Base class for expression nodes."""

    def evaluate(self, env: Mapping[str, float]) -> float:
        """Evaluate the expression against an environment of symbol values."""
        raise NotImplementedError

    def symbols(self) -> List[str]:
        """Return the distinct symbols referenced, in first-appearance order."""
        seen: List[str] = []
        self._collect_symbols(seen)
        return seen

    def _collect_symbols(self, seen: List[str]) -> None:
        raise NotImplementedError

    def to_infix(self) -> str:
        """Serialize to an infix string that :func:`parse` can read back."""
        raise NotImplementedError

    def to_python(self, name_map: Mapping[str, str]) -> str:
        """Generate a Python expression string (used by :func:`compile_function`)."""
        raise NotImplementedError

    def substitute(self, bindings: Mapping[str, "Expr"]) -> "Expr":
        """Return a copy with symbols replaced by other expressions."""
        raise NotImplementedError

    # Conveniences so trees compare & print nicely in tests ------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}({self.to_infix()!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Expr) and self.to_infix() == other.to_infix()

    def __hash__(self) -> int:
        return hash(self.to_infix())


@dataclass(frozen=True, eq=False)
class Num(Expr):
    """A numeric literal."""

    value: float

    def evaluate(self, env: Mapping[str, float]) -> float:
        return float(self.value)

    def _collect_symbols(self, seen: List[str]) -> None:
        return None

    def to_infix(self) -> str:
        value = float(self.value)
        if value == int(value) and abs(value) < 1e16:
            return str(int(value))
        return repr(value)

    def to_python(self, name_map: Mapping[str, str]) -> str:
        return repr(float(self.value))

    def substitute(self, bindings: Mapping[str, Expr]) -> Expr:
        return self


@dataclass(frozen=True, eq=False)
class Sym(Expr):
    """A named symbol (species id, parameter id, compartment id or ``time``)."""

    name: str

    def evaluate(self, env: Mapping[str, float]) -> float:
        try:
            return float(env[self.name])
        except KeyError:
            raise PropensityError(
                f"symbol {self.name!r} is not defined in the evaluation environment",
            ) from None

    def _collect_symbols(self, seen: List[str]) -> None:
        if self.name not in seen:
            seen.append(self.name)

    def to_infix(self) -> str:
        return self.name

    def to_python(self, name_map: Mapping[str, str]) -> str:
        try:
            return name_map[self.name]
        except KeyError:
            raise PropensityError(
                f"symbol {self.name!r} has no binding in the compilation name map",
            ) from None

    def substitute(self, bindings: Mapping[str, Expr]) -> Expr:
        return bindings.get(self.name, self)


_PRECEDENCE = {"+": 1, "-": 1, "*": 2, "/": 2, "^": 3}


@dataclass(frozen=True, eq=False)
class BinOp(Expr):
    """A binary operation: ``+``, ``-``, ``*``, ``/`` or ``^``."""

    op: str
    left: Expr
    right: Expr

    def evaluate(self, env: Mapping[str, float]) -> float:
        a = self.left.evaluate(env)
        b = self.right.evaluate(env)
        if self.op == "+":
            return a + b
        if self.op == "-":
            return a - b
        if self.op == "*":
            return a * b
        if self.op == "/":
            return a / b
        if self.op == "^":
            return a**b
        raise PropensityError(f"unknown operator {self.op!r}")

    def _collect_symbols(self, seen: List[str]) -> None:
        self.left._collect_symbols(seen)
        self.right._collect_symbols(seen)

    def _wrap(self, child: Expr, right_side: bool) -> str:
        text = child.to_infix()
        if isinstance(child, BinOp):
            child_prec = _PRECEDENCE[child.op]
            my_prec = _PRECEDENCE[self.op]
            if child_prec < my_prec or (
                child_prec == my_prec and right_side and self.op in {"-", "/", "^"}
            ):
                return f"({text})"
        if isinstance(child, Neg):
            return f"({text})"
        return text

    def to_infix(self) -> str:
        return f"{self._wrap(self.left, False)} {self.op} {self._wrap(self.right, True)}"

    def to_python(self, name_map: Mapping[str, str]) -> str:
        op = "**" if self.op == "^" else self.op
        return f"({self.left.to_python(name_map)} {op} {self.right.to_python(name_map)})"

    def substitute(self, bindings: Mapping[str, Expr]) -> Expr:
        return BinOp(self.op, self.left.substitute(bindings), self.right.substitute(bindings))


@dataclass(frozen=True, eq=False)
class Neg(Expr):
    """Unary minus."""

    operand: Expr

    def evaluate(self, env: Mapping[str, float]) -> float:
        return -self.operand.evaluate(env)

    def _collect_symbols(self, seen: List[str]) -> None:
        self.operand._collect_symbols(seen)

    def to_infix(self) -> str:
        inner = self.operand.to_infix()
        if isinstance(self.operand, BinOp):
            inner = f"({inner})"
        return f"-{inner}"

    def to_python(self, name_map: Mapping[str, str]) -> str:
        return f"(-{self.operand.to_python(name_map)})"

    def substitute(self, bindings: Mapping[str, Expr]) -> Expr:
        return Neg(self.operand.substitute(bindings))


@dataclass(frozen=True, eq=False)
class Call(Expr):
    """A call to one of the functions in :data:`FUNCTIONS`."""

    func: str
    args: Tuple[Expr, ...]

    def __post_init__(self) -> None:
        if self.func not in FUNCTIONS:
            raise PropensityError(f"unknown function {self.func!r}")
        arity = FUNCTIONS[self.func][0]
        if arity >= 0 and len(self.args) != arity:
            raise PropensityError(
                f"function {self.func!r} expects {arity} argument(s), got {len(self.args)}",
            )
        object.__setattr__(self, "args", tuple(self.args))

    def evaluate(self, env: Mapping[str, float]) -> float:
        fn = FUNCTIONS[self.func][1]
        return float(fn(*(a.evaluate(env) for a in self.args)))

    def _collect_symbols(self, seen: List[str]) -> None:
        for a in self.args:
            a._collect_symbols(seen)

    def to_infix(self) -> str:
        return f"{self.func}({', '.join(a.to_infix() for a in self.args)})"

    def to_python(self, name_map: Mapping[str, str]) -> str:
        args = ", ".join(a.to_python(name_map) for a in self.args)
        return f"_fn_{self.func}({args})"

    def substitute(self, bindings: Mapping[str, Expr]) -> Expr:
        return Call(self.func, tuple(a.substitute(bindings) for a in self.args))


# ---------------------------------------------------------------------------
# Infix parser (recursive descent)
# ---------------------------------------------------------------------------

_TOKEN_OPERATORS = "+-*/^(),"


class _Tokenizer:
    """Splits an infix expression into (kind, text, position) tokens."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.tokens: List[Tuple[str, str, int]] = []
        self._tokenize()
        self.index = 0

    def _tokenize(self) -> None:
        text = self.text
        i = 0
        n = len(text)
        while i < n:
            ch = text[i]
            if ch.isspace():
                i += 1
                continue
            if ch in _TOKEN_OPERATORS:
                self.tokens.append(("op", ch, i))
                i += 1
                continue
            if ch.isdigit() or ch == ".":
                j = i
                seen_exp = False
                while j < n and (
                    text[j].isdigit()
                    or text[j] == "."
                    or (text[j] in "eE" and not seen_exp)
                    or (text[j] in "+-" and j > i and text[j - 1] in "eE")
                ):
                    if text[j] in "eE":
                        seen_exp = True
                    j += 1
                chunk = text[i:j]
                try:
                    float(chunk)
                except ValueError:
                    raise MathParseError(text, i, f"bad numeric literal {chunk!r}")
                self.tokens.append(("num", chunk, i))
                i = j
                continue
            if ch.isalpha() or ch == "_":
                j = i
                while j < n and (text[j].isalnum() or text[j] == "_"):
                    j += 1
                self.tokens.append(("name", text[i:j], i))
                i = j
                continue
            raise MathParseError(text, i, f"unexpected character {ch!r}")
        self.tokens.append(("end", "", n))

    def peek(self) -> Tuple[str, str, int]:
        return self.tokens[self.index]

    def next(self) -> Tuple[str, str, int]:
        token = self.tokens[self.index]
        self.index += 1
        return token


class _Parser:
    """Recursive-descent parser with standard precedence and right-assoc ``^``."""

    def __init__(self, text: str):
        self.text = text
        self.tok = _Tokenizer(text)

    def parse(self) -> Expr:
        expr = self._parse_additive()
        kind, value, pos = self.tok.peek()
        if kind != "end":
            raise MathParseError(self.text, pos, f"unexpected trailing token {value!r}")
        return expr

    def _parse_additive(self) -> Expr:
        node = self._parse_multiplicative()
        while True:
            kind, value, _ = self.tok.peek()
            if kind == "op" and value in "+-":
                self.tok.next()
                rhs = self._parse_multiplicative()
                node = BinOp(value, node, rhs)
            else:
                return node

    def _parse_multiplicative(self) -> Expr:
        node = self._parse_unary()
        while True:
            kind, value, _ = self.tok.peek()
            if kind == "op" and value in "*/":
                self.tok.next()
                rhs = self._parse_unary()
                node = BinOp(value, node, rhs)
            else:
                return node

    def _parse_unary(self) -> Expr:
        kind, value, _ = self.tok.peek()
        if kind == "op" and value == "-":
            self.tok.next()
            return Neg(self._parse_unary())
        if kind == "op" and value == "+":
            self.tok.next()
            return self._parse_unary()
        return self._parse_power()

    def _parse_power(self) -> Expr:
        base = self._parse_atom()
        kind, value, _ = self.tok.peek()
        if kind == "op" and value == "^":
            self.tok.next()
            exponent = self._parse_unary()  # right associative, allows -x
            return BinOp("^", base, exponent)
        return base

    def _parse_atom(self) -> Expr:
        kind, value, pos = self.tok.next()
        if kind == "num":
            return Num(float(value))
        if kind == "name":
            next_kind, next_value, _ = self.tok.peek()
            if next_kind == "op" and next_value == "(":
                return self._parse_call(value, pos)
            return Sym(value)
        if kind == "op" and value == "(":
            inner = self._parse_additive()
            kind, value, pos = self.tok.next()
            if not (kind == "op" and value == ")"):
                raise MathParseError(self.text, pos, "expected ')'")
            return inner
        raise MathParseError(self.text, pos, f"unexpected token {value!r}")

    def _parse_call(self, func: str, pos: int) -> Expr:
        if func not in FUNCTIONS:
            raise MathParseError(self.text, pos, f"unknown function {func!r}")
        self.tok.next()  # consume '('
        args: List[Expr] = []
        kind, value, _ = self.tok.peek()
        if kind == "op" and value == ")":
            self.tok.next()
            return Call(func, tuple(args))
        while True:
            args.append(self._parse_additive())
            kind, value, pos = self.tok.next()
            if kind == "op" and value == ")":
                return Call(func, tuple(args))
            if not (kind == "op" and value == ","):
                raise MathParseError(self.text, pos, "expected ',' or ')' in call")


def parse(text: Union[str, Expr]) -> Expr:
    """Parse an infix expression string into an :class:`Expr` tree.

    Passing an :class:`Expr` returns it unchanged, which lets APIs accept
    either form.
    """
    if isinstance(text, Expr):
        return text
    if not isinstance(text, str):
        raise MathParseError(str(text), 0, "expression must be a string or Expr")
    if not text.strip():
        raise MathParseError(text, 0, "empty expression")
    return _Parser(text).parse()


# ---------------------------------------------------------------------------
# Compilation to a fast callable
# ---------------------------------------------------------------------------


def compile_function(
    expr: Union[str, Expr],
    argument_names: Sequence[str],
    constants: Mapping[str, float] | None = None,
) -> Callable[..., float]:
    """Compile ``expr`` into a Python function of ``argument_names``.

    ``constants`` supplies values for symbols that are fixed (model
    parameters); remaining symbols must appear in ``argument_names``.  The
    generated function is used in the inner loop of the stochastic
    simulators, where calling :meth:`Expr.evaluate` with a dict would be an
    order of magnitude slower.
    """
    tree = parse(expr)
    constants = dict(constants or {})
    name_map: Dict[str, str] = {}
    for i, arg in enumerate(argument_names):
        name_map[arg] = f"_a{i}"
    for sym in tree.symbols():
        if sym in name_map:
            continue
        if sym in constants:
            name_map[sym] = f"_c[{sym!r}]"
        else:
            raise PropensityError(
                f"symbol {sym!r} is neither an argument nor a supplied constant",
            )
    body = tree.to_python(name_map)
    arglist = ", ".join(f"_a{i}" for i in range(len(argument_names)))
    source = f"def _compiled({arglist}):\n    return {body}\n"
    namespace: Dict[str, object] = {"_c": constants}
    for fname, (_, fn) in FUNCTIONS.items():
        namespace[f"_fn_{fname}"] = fn
    exec(source, namespace)  # noqa: S102 - source is generated from a validated AST
    compiled = namespace["_compiled"]
    compiled.__doc__ = f"compiled propensity: {tree.to_infix()}"
    return compiled  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# MathML (subset) serialization
# ---------------------------------------------------------------------------

MATHML_NS = "http://www.w3.org/1998/Math/MathML"

_MATHML_OPS = {"+": "plus", "-": "minus", "*": "times", "/": "divide", "^": "power"}
_MATHML_OPS_INV = {v: k for k, v in _MATHML_OPS.items()}

_MATHML_FUNCS = {
    "exp": "exp",
    "ln": "ln",
    "log": "ln",
    "log10": "log",
    "sqrt": "root",
    "abs": "abs",
    "floor": "floor",
    "ceil": "ceiling",
    "min": "min",
    "max": "max",
    "pow": "power",
}
_MATHML_FUNCS_INV = {
    "exp": "exp",
    "ln": "ln",
    "log": "log10",
    "root": "sqrt",
    "abs": "abs",
    "floor": "floor",
    "ceiling": "ceil",
    "min": "min",
    "max": "max",
}


def _mathml_node(expr: Expr, indent: str) -> str:
    pad = indent
    if isinstance(expr, Num):
        return f"{pad}<cn> {expr.to_infix()} </cn>"
    if isinstance(expr, Sym):
        return f"{pad}<ci> {expr.name} </ci>"
    if isinstance(expr, Neg):
        inner = _mathml_node(expr.operand, indent + "  ")
        return f"{pad}<apply>\n{pad}  <minus/>\n{inner}\n{pad}</apply>"
    if isinstance(expr, BinOp):
        op = _MATHML_OPS[expr.op]
        left = _mathml_node(expr.left, indent + "  ")
        right = _mathml_node(expr.right, indent + "  ")
        return f"{pad}<apply>\n{pad}  <{op}/>\n{left}\n{right}\n{pad}</apply>"
    if isinstance(expr, Call):
        func = expr.func
        if func in ("hill_act", "hill_rep", "piecewise"):
            # Expand convenience functions into core MathML so any consumer
            # of the emitted SBML can evaluate them.
            return _mathml_node(_expand_convenience(expr), indent)
        tag = _MATHML_FUNCS.get(func)
        if tag is None:
            raise PropensityError(f"function {func!r} has no MathML form")
        args = "\n".join(_mathml_node(a, indent + "  ") for a in expr.args)
        return f"{pad}<apply>\n{pad}  <{tag}/>\n{args}\n{pad}</apply>"
    raise PropensityError(f"cannot serialize expression node {expr!r}")


def _expand_convenience(expr: Call) -> Expr:
    """Rewrite hill_act / hill_rep / piecewise into core arithmetic."""
    if expr.func == "hill_act":
        x, k, n = expr.args
        xn = BinOp("^", x, n)
        kn = BinOp("^", k, n)
        return BinOp("/", xn, BinOp("+", kn, xn))
    if expr.func == "hill_rep":
        x, k, n = expr.args
        xn = BinOp("^", x, n)
        kn = BinOp("^", k, n)
        return BinOp("/", kn, BinOp("+", kn, xn))
    if expr.func == "piecewise":
        raise PropensityError("piecewise cannot be serialized to the MathML subset")
    return expr


def to_mathml(expr: Union[str, Expr], indent: str = "  ") -> str:
    """Serialize an expression to a ``<math>`` element (MathML subset)."""
    tree = parse(expr)
    body = _mathml_node(tree, indent + "  ")
    return f'{indent}<math xmlns="{MATHML_NS}">\n{body}\n{indent}</math>'


def from_mathml(element) -> Expr:
    """Parse an ``xml.etree`` ``<math>`` (or inner ``apply``) element."""
    tag = element.tag.split("}")[-1]
    if tag == "math":
        children = list(element)
        if len(children) != 1:
            raise MathParseError("<math>", 0, "expected exactly one child of <math>")
        return from_mathml(children[0])
    if tag == "cn":
        return Num(float((element.text or "0").strip()))
    if tag == "ci":
        return Sym((element.text or "").strip())
    if tag == "apply":
        children = list(element)
        if not children:
            raise MathParseError("<apply>", 0, "empty <apply>")
        op_tag = children[0].tag.split("}")[-1]
        args = [from_mathml(child) for child in children[1:]]
        if op_tag in _MATHML_OPS_INV:
            op = _MATHML_OPS_INV[op_tag]
            if op == "-" and len(args) == 1:
                return Neg(args[0])
            if op == "^":
                return BinOp("^", args[0], args[1])
            if len(args) < 2:
                raise MathParseError("<apply>", 0, f"operator {op_tag} needs 2+ args")
            node = args[0]
            for arg in args[1:]:
                node = BinOp(op, node, arg)
            return node
        if op_tag == "power":
            return BinOp("^", args[0], args[1])
        if op_tag in _MATHML_FUNCS_INV:
            return Call(_MATHML_FUNCS_INV[op_tag], tuple(args))
        raise MathParseError("<apply>", 0, f"unsupported MathML operator {op_tag!r}")
    raise MathParseError(tag, 0, f"unsupported MathML element {tag!r}")
