"""Serialize :class:`repro.sbml.Model` objects to SBML Level 3 Version 1 XML.

Only the core subset used by genetic logic circuits is emitted (compartments,
species, parameters, reactions with kinetic laws expressed in MathML).  The
output round-trips through :mod:`repro.sbml.reader` and is close enough to
standard SBML that external tools accepting Level 3 core can read the models.
"""

from __future__ import annotations

from typing import List
from xml.sax.saxutils import escape, quoteattr

from .ast import to_mathml
from .model import Model, Reaction

__all__ = ["write_sbml_string", "write_sbml_file", "SBML_NS"]

SBML_NS = "http://www.sbml.org/sbml/level3/version1/core"


def _bool(value: bool) -> str:
    return "true" if value else "false"


def _species_lines(model: Model) -> List[str]:
    lines = ["    <listOfSpecies>"]
    for species in model.species.values():
        lines.append(
            "      <species id={id} name={name} compartment={comp} "
            "initialAmount={amount} hasOnlySubstanceUnits={hosu} "
            "boundaryCondition={boundary} constant={constant}/>".format(
                id=quoteattr(species.sid),
                name=quoteattr(species.name),
                comp=quoteattr(species.compartment),
                amount=quoteattr(repr(float(species.initial_amount))),
                hosu=quoteattr(_bool(species.has_only_substance_units)),
                boundary=quoteattr(_bool(species.boundary_condition)),
                constant=quoteattr(_bool(species.constant)),
            ),
        )
    lines.append("    </listOfSpecies>")
    return lines


def _compartment_lines(model: Model) -> List[str]:
    lines = ["    <listOfCompartments>"]
    for compartment in model.compartments.values():
        lines.append(
            "      <compartment id={id} name={name} size={size} constant={constant}/>".format(
                id=quoteattr(compartment.sid),
                name=quoteattr(compartment.name),
                size=quoteattr(repr(float(compartment.size))),
                constant=quoteattr(_bool(compartment.constant)),
            ),
        )
    lines.append("    </listOfCompartments>")
    return lines


def _parameter_lines(model: Model) -> List[str]:
    if not model.parameters:
        return []
    lines = ["    <listOfParameters>"]
    for parameter in model.parameters.values():
        lines.append(
            "      <parameter id={id} name={name} value={value} constant={constant}/>".format(
                id=quoteattr(parameter.sid),
                name=quoteattr(parameter.name),
                value=quoteattr(repr(float(parameter.value))),
                constant=quoteattr(_bool(parameter.constant)),
            ),
        )
    lines.append("    </listOfParameters>")
    return lines


def _reaction_lines(reaction: Reaction) -> List[str]:
    lines = [
        "      <reaction id={id} name={name} reversible={rev}>".format(
            id=quoteattr(reaction.sid),
            name=quoteattr(reaction.name),
            rev=quoteattr(_bool(reaction.reversible)),
        ),
    ]
    if reaction.reactants:
        lines.append("        <listOfReactants>")
        for ref in reaction.reactants:
            lines.append(
                '          <speciesReference species={sp} stoichiometry={st} constant="true"/>'.format(
                    sp=quoteattr(ref.species),
                    st=quoteattr(repr(float(ref.stoichiometry))),
                ),
            )
        lines.append("        </listOfReactants>")
    if reaction.products:
        lines.append("        <listOfProducts>")
        for ref in reaction.products:
            lines.append(
                '          <speciesReference species={sp} stoichiometry={st} constant="true"/>'.format(
                    sp=quoteattr(ref.species),
                    st=quoteattr(repr(float(ref.stoichiometry))),
                ),
            )
        lines.append("        </listOfProducts>")
    if reaction.modifiers:
        lines.append("        <listOfModifiers>")
        for sid in reaction.modifiers:
            lines.append(
                f"          <modifierSpeciesReference species={quoteattr(sid)}/>",
            )
        lines.append("        </listOfModifiers>")
    if reaction.kinetic_law is not None:
        lines.append("        <kineticLaw>")
        lines.append(to_mathml(reaction.kinetic_law.math, indent="          "))
        if reaction.kinetic_law.local_parameters:
            lines.append("          <listOfLocalParameters>")
            for sid, value in reaction.kinetic_law.local_parameters.items():
                lines.append(
                    "            <localParameter id={id} value={value}/>".format(
                        id=quoteattr(sid),
                        value=quoteattr(repr(float(value))),
                    ),
                )
            lines.append("          </listOfLocalParameters>")
        lines.append("        </kineticLaw>")
    lines.append("      </reaction>")
    return lines


def write_sbml_string(model: Model) -> str:
    """Render ``model`` as an SBML Level 3 Version 1 XML string."""
    lines = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        f'<sbml xmlns="{SBML_NS}" level="3" version="1">',
        f"  <model id={quoteattr(model.sid)} name={quoteattr(model.name)}>",
    ]
    if model.notes:
        lines.append("    <notes>")
        lines.append(
            '      <body xmlns="http://www.w3.org/1999/xhtml"><p>'
            + escape(model.notes)
            + "</p></body>",
        )
        lines.append("    </notes>")
    lines.extend(_compartment_lines(model))
    lines.extend(_species_lines(model))
    lines.extend(_parameter_lines(model))
    if model.reactions:
        lines.append("    <listOfReactions>")
        for reaction in model.reactions.values():
            lines.extend(_reaction_lines(reaction))
        lines.append("    </listOfReactions>")
    lines.append("  </model>")
    lines.append("</sbml>")
    return "\n".join(lines) + "\n"


def write_sbml_file(model: Model, path) -> None:
    """Write ``model`` to ``path`` as SBML XML."""
    text = write_sbml_string(model)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
