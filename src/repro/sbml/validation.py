"""Structural validation of :class:`repro.sbml.Model` objects.

The checks mirror the consistency rules a genetic-circuit simulator relies
on: every reference resolves, kinetic laws only mention known symbols,
species that are produced are also degraded (otherwise counts grow without
bound and the stochastic traces never settle into logic levels), and boundary
(input) species are not produced by the circuit itself.
"""

from __future__ import annotations

from typing import List

from ..errors import ValidationError
from .model import Model

__all__ = ["validate_model", "check_model"]


def validate_model(model: Model, require_degradation: bool = True) -> List[str]:
    """Return a list of human-readable problems found in ``model``.

    An empty list means the model passed every check.  ``require_degradation``
    enables the (genetic-circuit specific) check that every produced,
    non-boundary species also appears as a reactant of some reaction.
    """
    problems: List[str] = []

    if not model.compartments:
        problems.append("model has no compartment")
    if not model.species:
        problems.append("model has no species")
    if not model.reactions:
        problems.append("model has no reactions")

    for species in model.species.values():
        if species.compartment not in model.compartments:
            problems.append(
                f"species {species.sid!r} references unknown compartment "
                f"{species.compartment!r}",
            )

    produced: set = set()
    consumed: set = set()
    for reaction in model.reactions.values():
        for ref in reaction.reactants + reaction.products:
            if ref.species not in model.species:
                problems.append(
                    f"reaction {reaction.sid!r} references unknown species "
                    f"{ref.species!r}",
                )
        for sid in reaction.modifiers:
            if sid not in model.species:
                problems.append(
                    f"reaction {reaction.sid!r} has unknown modifier {sid!r}",
                )
        for ref in reaction.products:
            produced.add(ref.species)
        for ref in reaction.reactants:
            consumed.add(ref.species)

        if reaction.kinetic_law is None:
            problems.append(f"reaction {reaction.sid!r} has no kinetic law")
            continue
        for symbol in reaction.kinetic_law.symbols():
            if symbol == "time":
                continue
            if (
                symbol not in model.species
                and symbol not in model.parameters
                and symbol not in model.compartments
            ):
                problems.append(
                    f"kinetic law of reaction {reaction.sid!r} references unknown "
                    f"symbol {symbol!r}",
                )
        # A kinetic law that never mentions the reactants nor modifiers is
        # suspicious for anything except a constitutive (zeroth-order)
        # production reaction.
        law_symbols = set(reaction.kinetic_law.symbols())
        touched = {ref.species for ref in reaction.reactants} | set(reaction.modifiers)
        if reaction.reactants and not (law_symbols & touched):
            problems.append(
                f"kinetic law of reaction {reaction.sid!r} does not depend on any "
                "of its reactants or modifiers",
            )

    if require_degradation:
        for sid in sorted(produced):
            species = model.species[sid]
            if species.boundary_condition or species.constant:
                continue
            if sid not in consumed:
                problems.append(
                    f"species {sid!r} is produced but never degraded/consumed; "
                    "its count will grow without bound",
                )

    for sid in model.boundary_species():
        if sid in produced:
            problems.append(
                f"boundary (input) species {sid!r} is also produced by a reaction",
            )

    # Parameter sanity: negative rate constants are almost always a typo.
    for parameter in model.parameters.values():
        if parameter.value < 0:
            problems.append(f"parameter {parameter.sid!r} has a negative value")

    return problems


def check_model(model: Model, require_degradation: bool = True) -> None:
    """Raise :class:`ValidationError` if :func:`validate_model` finds problems."""
    problems = validate_model(model, require_degradation=require_degradation)
    if problems:
        raise ValidationError(problems)
