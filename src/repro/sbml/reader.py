"""Parse SBML Level 3 (core subset) XML documents into :class:`Model` objects.

The reader accepts the documents produced by :mod:`repro.sbml.writer` as well
as hand-written SBML that sticks to the core constructs used by genetic logic
circuits: compartments, species, global parameters and reactions with MathML
kinetic laws.  Unknown elements are ignored rather than rejected so that
models exported by other tools (iBioSim, COPASI) remain loadable as long as
their kinetic laws stay within the supported MathML subset.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Optional

from ..errors import SBMLParseError
from .ast import from_mathml
from .model import KineticLaw, Model, SpeciesReference

__all__ = ["read_sbml_string", "read_sbml_file"]


def _strip(tag: str) -> str:
    """Remove the namespace from an element tag."""
    return tag.split("}")[-1]


def _find_child(element: ET.Element, name: str) -> Optional[ET.Element]:
    for child in element:
        if _strip(child.tag) == name:
            return child
    return None


def _iter_children(element: Optional[ET.Element], name: str):
    if element is None:
        return
    for child in element:
        if _strip(child.tag) == name:
            yield child


def _parse_bool(value: Optional[str], default: bool = False) -> bool:
    if value is None:
        return default
    return value.strip().lower() in {"true", "1"}


def _parse_float(value: Optional[str], default: float = 0.0) -> float:
    if value is None or value == "":
        return default
    try:
        return float(value)
    except ValueError as exc:
        raise SBMLParseError(f"bad numeric attribute {value!r}") from exc


def read_sbml_string(text: str) -> Model:
    """Parse an SBML XML string into a :class:`Model`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise SBMLParseError(f"malformed XML: {exc}") from exc
    if _strip(root.tag) != "sbml":
        raise SBMLParseError(f"expected <sbml> root element, got <{_strip(root.tag)}>")
    model_element = _find_child(root, "model")
    if model_element is None:
        raise SBMLParseError("document has no <model> element")

    model = Model(
        sid=model_element.get("id", "model"),
        name=model_element.get("name", ""),
    )

    notes = _find_child(model_element, "notes")
    if notes is not None:
        model.notes = " ".join(t.strip() for t in notes.itertext() if t.strip())

    compartments = _find_child(model_element, "listOfCompartments")
    for element in _iter_children(compartments, "compartment"):
        model.add_compartment(
            element.get("id", "cell"),
            size=_parse_float(element.get("size"), 1.0),
            name=element.get("name", ""),
        )
    if not model.compartments:
        model.add_compartment("cell")

    species_list = _find_child(model_element, "listOfSpecies")
    for element in _iter_children(species_list, "species"):
        sid = element.get("id")
        if not sid:
            raise SBMLParseError("species element without an id")
        compartment = element.get("compartment", next(iter(model.compartments)))
        if compartment not in model.compartments:
            model.add_compartment(compartment)
        model.add_species(
            sid,
            initial_amount=_parse_float(element.get("initialAmount"), 0.0),
            compartment=compartment,
            boundary_condition=_parse_bool(element.get("boundaryCondition")),
            constant=_parse_bool(element.get("constant")),
            name=element.get("name", ""),
        )

    parameters = _find_child(model_element, "listOfParameters")
    for element in _iter_children(parameters, "parameter"):
        sid = element.get("id")
        if not sid:
            raise SBMLParseError("parameter element without an id")
        model.add_parameter(
            sid,
            value=_parse_float(element.get("value"), 0.0),
            name=element.get("name", ""),
        )

    reactions = _find_child(model_element, "listOfReactions")
    for element in _iter_children(reactions, "reaction"):
        sid = element.get("id")
        if not sid:
            raise SBMLParseError("reaction element without an id")
        reactants = [
            SpeciesReference(
                ref.get("species", ""),
                _parse_float(ref.get("stoichiometry"), 1.0),
            )
            for ref in _iter_children(_find_child(element, "listOfReactants"), "speciesReference")
        ]
        products = [
            SpeciesReference(
                ref.get("species", ""),
                _parse_float(ref.get("stoichiometry"), 1.0),
            )
            for ref in _iter_children(_find_child(element, "listOfProducts"), "speciesReference")
        ]
        modifiers = [
            ref.get("species", "")
            for ref in _iter_children(
                _find_child(element, "listOfModifiers"),
                "modifierSpeciesReference",
            )
        ]
        kinetic_law = None
        law_element = _find_child(element, "kineticLaw")
        if law_element is not None:
            math_element = _find_child(law_element, "math")
            if math_element is None:
                raise SBMLParseError(f"reaction {sid!r} kineticLaw has no <math>")
            local = {}
            locals_element = _find_child(law_element, "listOfLocalParameters")
            for parameter in _iter_children(locals_element, "localParameter"):
                local[parameter.get("id", "")] = _parse_float(parameter.get("value"), 0.0)
            kinetic_law = KineticLaw(from_mathml(math_element), local)
        model.add_reaction(
            sid,
            reactants=reactants,
            products=products,
            modifiers=modifiers,
            kinetic_law=kinetic_law,
            reversible=_parse_bool(element.get("reversible")),
            name=element.get("name", ""),
        )
    return model


def read_sbml_file(path) -> Model:
    """Read an SBML XML file into a :class:`Model`."""
    with open(path, "r", encoding="utf-8") as handle:
        return read_sbml_string(handle.read())
