"""In-memory representation of the SBML Level 3 (core subset) models.

The paper drives its experiments from SBML models of genetic circuits: the
model holds species (proteins, small molecules), global parameters,
compartments (a single cell, usually) and reactions whose kinetic laws are
arbitrary math expressions over species and parameters.  This module is the
hub every other subsystem builds on:

* :mod:`repro.sbol.converter` emits :class:`Model` objects,
* :mod:`repro.gates.compose` builds :class:`Model` objects from gate netlists,
* :mod:`repro.stochastic` compiles :class:`Model` objects into propensity
  vectors and simulates them,
* :mod:`repro.sbml.reader` / :mod:`repro.sbml.writer` round-trip
  :class:`Model` objects through SBML XML.

Only the subset of SBML needed for genetic logic circuits is represented, but
that subset is honoured faithfully (identifiers, boundary conditions,
reversibility flags, local kinetic-law parameters, modifier species).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Union

from ..errors import DuplicateIdError, ModelError, UnknownIdError
from .ast import Expr, parse

__all__ = [
    "Compartment",
    "Species",
    "Parameter",
    "SpeciesReference",
    "KineticLaw",
    "Reaction",
    "Model",
    "is_valid_sid",
]


_SID_CHARS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_")


def is_valid_sid(identifier: str) -> bool:
    """Return True if ``identifier`` is a valid SBML SId.

    SBML SIds match ``[A-Za-z_][A-Za-z0-9_]*``.
    """
    if not identifier:
        return False
    if identifier[0].isdigit():
        return False
    return all(ch in _SID_CHARS for ch in identifier)


def _check_sid(kind: str, identifier: str) -> str:
    if not is_valid_sid(identifier):
        raise ModelError(f"{kind} id {identifier!r} is not a valid SBML SId")
    return identifier


@dataclass
class Compartment:
    """A compartment (volume) species live in.  Genetic circuits use one cell."""

    sid: str
    name: str = ""
    size: float = 1.0
    constant: bool = True

    def __post_init__(self) -> None:
        _check_sid("compartment", self.sid)
        if self.size <= 0:
            raise ModelError(f"compartment {self.sid!r} must have positive size")


@dataclass
class Species:
    """A molecular species (input protein, output protein, repressor, ...).

    ``initial_amount`` is a molecule count (the paper works in molecules, not
    concentrations).  ``boundary_condition=True`` marks species whose amount
    is controlled externally — the virtual laboratory clamps input species by
    setting this flag so reactions never consume them.
    """

    sid: str
    name: str = ""
    compartment: str = "cell"
    initial_amount: float = 0.0
    boundary_condition: bool = False
    constant: bool = False
    has_only_substance_units: bool = True

    def __post_init__(self) -> None:
        _check_sid("species", self.sid)
        if not self.name:
            self.name = self.sid
        if self.initial_amount < 0:
            raise ModelError(f"species {self.sid!r} has negative initial amount")


@dataclass
class Parameter:
    """A named constant (rate constant, Hill coefficient, threshold K, ...)."""

    sid: str
    value: float
    name: str = ""
    constant: bool = True
    units: str = ""

    def __post_init__(self) -> None:
        _check_sid("parameter", self.sid)
        if not self.name:
            self.name = self.sid


@dataclass
class SpeciesReference:
    """A (species, stoichiometry) pair inside a reaction."""

    species: str
    stoichiometry: float = 1.0

    def __post_init__(self) -> None:
        _check_sid("species reference", self.species)
        if self.stoichiometry <= 0:
            raise ModelError(
                f"stoichiometry for {self.species!r} must be positive "
                f"(got {self.stoichiometry})",
            )


@dataclass
class KineticLaw:
    """The rate law of a reaction.

    ``math`` is an :class:`repro.sbml.ast.Expr`; ``local_parameters`` shadow
    global parameters of the same id, exactly as in SBML.
    """

    math: Expr
    local_parameters: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.math = parse(self.math)
        self.local_parameters = dict(self.local_parameters)

    def symbols(self) -> List[str]:
        """Symbols referenced by the law that are not local parameters."""
        return [s for s in self.math.symbols() if s not in self.local_parameters]


@dataclass
class Reaction:
    """A reaction with reactants, products, modifiers and a kinetic law.

    Genetic gate models are built almost exclusively from two templates:

    * regulated production: ``∅ -> protein`` with a Hill-type law that has the
      regulators as *modifiers*,
    * first-order degradation: ``protein -> ∅`` with law ``kd * protein``.
    """

    sid: str
    reactants: List[SpeciesReference] = field(default_factory=list)
    products: List[SpeciesReference] = field(default_factory=list)
    modifiers: List[str] = field(default_factory=list)
    kinetic_law: Optional[KineticLaw] = None
    reversible: bool = False
    name: str = ""

    def __post_init__(self) -> None:
        _check_sid("reaction", self.sid)
        if not self.name:
            self.name = self.sid
        self.reactants = [
            r if isinstance(r, SpeciesReference) else SpeciesReference(*r)
            for r in self.reactants
        ]
        self.products = [
            p if isinstance(p, SpeciesReference) else SpeciesReference(*p)
            for p in self.products
        ]
        self.modifiers = list(self.modifiers)

    def species_ids(self) -> List[str]:
        """All species touched by the reaction (reactants, products, modifiers)."""
        ids: List[str] = []
        for ref in self.reactants:
            ids.append(ref.species)
        for ref in self.products:
            ids.append(ref.species)
        ids.extend(self.modifiers)
        return ids

    def net_stoichiometry(self) -> Dict[str, float]:
        """Net change of each species when the reaction fires once."""
        delta: Dict[str, float] = {}
        for ref in self.reactants:
            delta[ref.species] = delta.get(ref.species, 0.0) - ref.stoichiometry
        for ref in self.products:
            delta[ref.species] = delta.get(ref.species, 0.0) + ref.stoichiometry
        return {sid: value for sid, value in delta.items() if value != 0.0}


class Model:
    """An SBML-like model: compartments, species, parameters and reactions.

    The class enforces referential integrity eagerly: adding a reaction whose
    species or kinetic-law symbols are unknown raises immediately, which keeps
    downstream simulation errors close to their cause.
    """

    def __init__(self, sid: str = "model", name: str = ""):
        _check_sid("model", sid)
        self.sid = sid
        self.name = name or sid
        self.compartments: Dict[str, Compartment] = {}
        self.species: Dict[str, Species] = {}
        self.parameters: Dict[str, Parameter] = {}
        self.reactions: Dict[str, Reaction] = {}
        self.notes: str = ""

    # -- construction -------------------------------------------------------
    def add_compartment(
        self,
        sid: str = "cell",
        size: float = 1.0,
        name: str = "",
    ) -> Compartment:
        if sid in self.compartments:
            raise DuplicateIdError("compartment", sid)
        compartment = Compartment(sid=sid, size=size, name=name or sid)
        self.compartments[sid] = compartment
        return compartment

    def add_species(
        self,
        sid: str,
        initial_amount: float = 0.0,
        compartment: str = "cell",
        boundary_condition: bool = False,
        constant: bool = False,
        name: str = "",
    ) -> Species:
        if sid in self.species:
            raise DuplicateIdError("species", sid)
        if compartment not in self.compartments:
            if compartment == "cell" and not self.compartments:
                self.add_compartment("cell")
            else:
                raise UnknownIdError("compartment", compartment)
        species = Species(
            sid=sid,
            initial_amount=initial_amount,
            compartment=compartment,
            boundary_condition=boundary_condition,
            constant=constant,
            name=name,
        )
        self.species[sid] = species
        return species

    def add_parameter(self, sid: str, value: float, name: str = "") -> Parameter:
        if sid in self.parameters:
            raise DuplicateIdError("parameter", sid)
        parameter = Parameter(sid=sid, value=value, name=name)
        self.parameters[sid] = parameter
        return parameter

    def add_reaction(
        self,
        sid: str,
        reactants: Sequence[Union[SpeciesReference, tuple]] = (),
        products: Sequence[Union[SpeciesReference, tuple]] = (),
        modifiers: Sequence[str] = (),
        kinetic_law: Union[KineticLaw, Expr, str, None] = None,
        reversible: bool = False,
        name: str = "",
        local_parameters: Optional[Mapping[str, float]] = None,
    ) -> Reaction:
        if sid in self.reactions:
            raise DuplicateIdError("reaction", sid)
        if kinetic_law is not None and not isinstance(kinetic_law, KineticLaw):
            kinetic_law = KineticLaw(parse(kinetic_law), dict(local_parameters or {}))
        reaction = Reaction(
            sid=sid,
            reactants=list(reactants),
            products=list(products),
            modifiers=list(modifiers),
            kinetic_law=kinetic_law,
            reversible=reversible,
            name=name,
        )
        self._check_reaction_references(reaction)
        self.reactions[sid] = reaction
        return reaction

    def _check_reaction_references(self, reaction: Reaction) -> None:
        for sid in reaction.species_ids():
            if sid not in self.species:
                raise UnknownIdError("species", sid)
        if reaction.kinetic_law is not None:
            for symbol in reaction.kinetic_law.symbols():
                if symbol == "time":
                    continue
                if (
                    symbol not in self.species
                    and symbol not in self.parameters
                    and symbol not in self.compartments
                ):
                    raise UnknownIdError("kinetic-law symbol", symbol)

    # -- queries -------------------------------------------------------------
    def species_ids(self) -> List[str]:
        """Species identifiers in insertion order."""
        return list(self.species.keys())

    def reaction_ids(self) -> List[str]:
        return list(self.reactions.keys())

    def parameter_values(self) -> Dict[str, float]:
        """Global parameter values plus compartment sizes, keyed by id."""
        env = {sid: p.value for sid, p in self.parameters.items()}
        env.update({sid: c.size for sid, c in self.compartments.items()})
        return env

    def initial_state(self) -> Dict[str, float]:
        """Initial molecule counts keyed by species id."""
        return {sid: s.initial_amount for sid, s in self.species.items()}

    def boundary_species(self) -> List[str]:
        """Species whose amounts are controlled externally (circuit inputs)."""
        return [sid for sid, s in self.species.items() if s.boundary_condition or s.constant]

    def get_species(self, sid: str) -> Species:
        try:
            return self.species[sid]
        except KeyError:
            raise UnknownIdError("species", sid) from None

    def get_reaction(self, sid: str) -> Reaction:
        try:
            return self.reactions[sid]
        except KeyError:
            raise UnknownIdError("reaction", sid) from None

    def get_parameter(self, sid: str) -> Parameter:
        try:
            return self.parameters[sid]
        except KeyError:
            raise UnknownIdError("parameter", sid) from None

    def set_initial_amount(self, sid: str, amount: float) -> None:
        """Set the initial molecule count of a species."""
        species = self.get_species(sid)
        if amount < 0:
            raise ModelError(f"cannot set negative amount for {sid!r}")
        species.initial_amount = amount

    def __iter__(self) -> Iterator[Reaction]:
        return iter(self.reactions.values())

    def __len__(self) -> int:
        return len(self.reactions)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Model({self.sid!r}, species={len(self.species)}, "
            f"reactions={len(self.reactions)}, parameters={len(self.parameters)})"
        )

    # -- manipulation --------------------------------------------------------
    def copy(self, sid: Optional[str] = None) -> "Model":
        """Deep-copy the model (cheap; models are small)."""
        clone = Model(sid or self.sid, self.name)
        clone.notes = self.notes
        for compartment in self.compartments.values():
            clone.add_compartment(compartment.sid, compartment.size, compartment.name)
        for species in self.species.values():
            clone.add_species(
                species.sid,
                initial_amount=species.initial_amount,
                compartment=species.compartment,
                boundary_condition=species.boundary_condition,
                constant=species.constant,
                name=species.name,
            )
        for parameter in self.parameters.values():
            clone.add_parameter(parameter.sid, parameter.value, parameter.name)
        for reaction in self.reactions.values():
            clone.add_reaction(
                reaction.sid,
                reactants=[
                    SpeciesReference(r.species, r.stoichiometry)
                    for r in reaction.reactants
                ],
                products=[
                    SpeciesReference(p.species, p.stoichiometry)
                    for p in reaction.products
                ],
                modifiers=list(reaction.modifiers),
                kinetic_law=(
                    KineticLaw(
                        reaction.kinetic_law.math,
                        dict(reaction.kinetic_law.local_parameters),
                    )
                    if reaction.kinetic_law is not None
                    else None
                ),
                reversible=reaction.reversible,
                name=reaction.name,
            )
        return clone

    def merge(self, other: "Model", prefix: str = "") -> None:
        """Merge ``other`` into this model, optionally prefixing its ids.

        Species that already exist (same id) are shared — this is how gate
        sub-models are wired together: the output species of one gate is the
        input species of the next.
        """
        rename = {}
        for sid in list(other.species) + list(other.parameters) + list(other.reactions):
            rename[sid] = f"{prefix}{sid}" if prefix else sid

        for compartment in other.compartments.values():
            if compartment.sid not in self.compartments:
                self.add_compartment(compartment.sid, compartment.size, compartment.name)
        for species in other.species.values():
            new_id = rename[species.sid]
            if new_id not in self.species:
                self.add_species(
                    new_id,
                    initial_amount=species.initial_amount,
                    compartment=species.compartment,
                    boundary_condition=species.boundary_condition,
                    constant=species.constant,
                    name=species.name,
                )
        for parameter in other.parameters.values():
            new_id = rename[parameter.sid]
            if new_id not in self.parameters:
                self.add_parameter(new_id, parameter.value, parameter.name)
        for reaction in other.reactions.values():
            new_id = rename[reaction.sid]
            if new_id in self.reactions:
                raise DuplicateIdError("reaction", new_id)
            bindings = {}
            if prefix:
                from .ast import Sym

                bindings = {old: Sym(new) for old, new in rename.items()}
            law = None
            if reaction.kinetic_law is not None:
                math = reaction.kinetic_law.math
                if bindings:
                    math = math.substitute(bindings)
                law = KineticLaw(math, dict(reaction.kinetic_law.local_parameters))
            self.add_reaction(
                new_id,
                reactants=[
                    SpeciesReference(rename[r.species], r.stoichiometry)
                    for r in reaction.reactants
                ],
                products=[
                    SpeciesReference(rename[p.species], p.stoichiometry)
                    for p in reaction.products
                ],
                modifiers=[rename[m] for m in reaction.modifiers],
                kinetic_law=law,
                reversible=reaction.reversible,
                name=reaction.name,
            )
