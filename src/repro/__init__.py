"""repro — Logic analysis and verification of n-input genetic logic circuits.

A from-scratch Python reproduction of Baig & Madsen, DATE 2017: stochastic
simulation of genetic logic circuits (SBML models, SSA engines, a virtual
laboratory) plus the paper's logic analysis and verification algorithm
(analog→digital conversion, per-combination case and variation analysis, the
two data filters, Boolean expression construction and the percentage-fitness
metric).

Typical use::

    from repro import and_gate_circuit, run_logic_experiment, LogicAnalyzer

    circuit = and_gate_circuit()                       # the paper's Figure 1
    data = run_logic_experiment(circuit, rng=1)        # virtual laboratory
    result = LogicAnalyzer(threshold=15).analyze(data, expected=circuit.expected_table)
    print(result.summary())
"""

from .analysis import (
    CandidateScore,
    ReplicateStudy,
    RobustnessReport,
    RuntimeMeasurement,
    ThresholdSweepEntry,
    ameasure_analysis_runtime,
    arun_replicate_study,
    assess_robustness,
    athreshold_sweep,
    measure_analysis_runtime,
    run_replicate_study,
    threshold_sweep,
)
from .core import (
    FilterConfig,
    LogicAnalysisResult,
    LogicAnalyzer,
    analyze_logic,
    format_analysis_report,
    format_case_table,
    format_suite_table,
    percentage_fitness,
)
from .engine import (
    AsyncEnsembleExecutor,
    CompiledModelCache,
    DistributedEnsembleExecutor,
    EnsembleResult,
    EnsembleStats,
    EnsembleStream,
    ProcessPoolEnsembleExecutor,
    SerialExecutor,
    SimulationJob,
    StudySpec,
    aiter_ensemble,
    arun_ensemble,
    gather_studies,
    get_executor,
    iter_ensemble,
    map_over_parameters,
    replicate_jobs,
    run_ensemble,
    run_job,
)
from .errors import ReproError
from .gates import (
    CELLO_CIRCUIT_NAMES,
    GeneticCircuit,
    Netlist,
    PartAssignment,
    and_gate_circuit,
    build_circuit,
    cello_circuit,
    cello_suite,
    default_library,
    diverse_library,
    enumerate_assignments,
    myers_suite,
    nand_gate_circuit,
    nor_gate_circuit,
    not_gate_circuit,
    or_gate_circuit,
    standard_suite,
    synthesize,
    synthesize_from_expression,
    synthesize_from_hex,
)
from .io import read_datalog_csv, result_to_dict, save_result_json, write_datalog_csv
from .logic import TruthTable, compare_tables, identify_gate, minimize, parse_expr
from .sbml import Model, read_sbml_file, read_sbml_string, write_sbml_file, write_sbml_string
from .sbol import ConversionParameters, SBOLDocument, sbol_to_sbml
from .search import SearchFrontier, SearchSpec, arun_design_search, run_design_search
from .service import AnalysisService, ResultCache, ServiceServer, serve
from .stochastic import (
    InputSchedule,
    Trajectory,
    simulate_next_reaction,
    simulate_ode,
    simulate_ssa,
    simulate_tau_leap,
)
from .version import __version__
from .vlab import (
    LogicExperiment,
    SimulationDataLog,
    aestimate_threshold,
    estimate_propagation_delay,
    estimate_threshold,
    exhaustive_protocol,
    gray_code_protocol,
    run_logic_experiment,
)

__all__ = [
    "__version__",
    "ReproError",
    # models
    "Model",
    "read_sbml_string",
    "read_sbml_file",
    "write_sbml_string",
    "write_sbml_file",
    "SBOLDocument",
    "ConversionParameters",
    "sbol_to_sbml",
    # simulation
    "Trajectory",
    "InputSchedule",
    "simulate_ssa",
    "simulate_next_reaction",
    "simulate_tau_leap",
    "simulate_ode",
    # gates and circuits
    "Netlist",
    "GeneticCircuit",
    "default_library",
    "diverse_library",
    "build_circuit",
    "PartAssignment",
    "enumerate_assignments",
    "synthesize",
    "synthesize_from_hex",
    "synthesize_from_expression",
    "not_gate_circuit",
    "and_gate_circuit",
    "or_gate_circuit",
    "nand_gate_circuit",
    "nor_gate_circuit",
    "myers_suite",
    "cello_circuit",
    "cello_suite",
    "standard_suite",
    "CELLO_CIRCUIT_NAMES",
    # virtual laboratory
    "LogicExperiment",
    "SimulationDataLog",
    "run_logic_experiment",
    "exhaustive_protocol",
    "gray_code_protocol",
    "estimate_threshold",
    "aestimate_threshold",
    "estimate_propagation_delay",
    # logic toolkit
    "TruthTable",
    "parse_expr",
    "minimize",
    "identify_gate",
    "compare_tables",
    # the algorithm
    "LogicAnalyzer",
    "LogicAnalysisResult",
    "FilterConfig",
    "analyze_logic",
    "percentage_fitness",
    "format_case_table",
    "format_analysis_report",
    "format_suite_table",
    # ensemble engine
    "StudySpec",
    "SimulationJob",
    "EnsembleResult",
    "EnsembleStats",
    "EnsembleStream",
    "SerialExecutor",
    "ProcessPoolEnsembleExecutor",
    "DistributedEnsembleExecutor",
    "AsyncEnsembleExecutor",
    "CompiledModelCache",
    "get_executor",
    "run_job",
    "run_ensemble",
    "iter_ensemble",
    "arun_ensemble",
    "aiter_ensemble",
    "gather_studies",
    "replicate_jobs",
    "map_over_parameters",
    # higher-level studies
    "threshold_sweep",
    "athreshold_sweep",
    "ThresholdSweepEntry",
    "assess_robustness",
    "RobustnessReport",
    "run_replicate_study",
    "arun_replicate_study",
    "ReplicateStudy",
    "CandidateScore",
    "measure_analysis_runtime",
    "ameasure_analysis_runtime",
    "RuntimeMeasurement",
    # design-space search
    "SearchSpec",
    "SearchFrontier",
    "run_design_search",
    "arun_design_search",
    # HTTP analysis service
    "AnalysisService",
    "ResultCache",
    "ServiceServer",
    "serve",
    # I/O
    "write_datalog_csv",
    "read_datalog_csv",
    "result_to_dict",
    "save_result_json",
]
