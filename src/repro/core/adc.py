"""Analog-to-digital conversion of species traces (Algorithm 1, sub-procedure ADC).

"The algorithm first converts the analog simulation data into digital data
with the help of threshold values" — a sample is logic-1 when the species
amount is at or above the threshold and logic-0 otherwise.  A hysteresis
variant (separate rising and falling thresholds) is provided as an extension:
it suppresses chattering when the output hovers around a single threshold,
and is used by the filter-ablation study to show that the paper's two data
filters achieve the same robustness without needing hysteresis.
"""

from __future__ import annotations


import numpy as np

from ..errors import ThresholdError

__all__ = ["analog_to_digital", "analog_to_digital_hysteresis", "digitize_matrix"]


def analog_to_digital(values: np.ndarray, threshold: float) -> np.ndarray:
    """Digitise one analog trace: 1 where ``values >= threshold`` else 0."""
    if threshold <= 0:
        raise ThresholdError(f"threshold must be positive, got {threshold!r}")
    values = np.asarray(values, dtype=float)
    if values.ndim != 1:
        raise ThresholdError("analog_to_digital expects a 1-D trace")
    return (values >= threshold).astype(np.int8)


def analog_to_digital_hysteresis(
    values: np.ndarray,
    low_threshold: float,
    high_threshold: float,
) -> np.ndarray:
    """Digitise with hysteresis: rise at ``high_threshold``, fall at ``low_threshold``.

    Between the two thresholds the previous digital value is held.  The trace
    starts at 0 unless the first sample is already above ``high_threshold``.
    """
    if low_threshold <= 0 or high_threshold <= 0:
        raise ThresholdError("hysteresis thresholds must be positive")
    if low_threshold > high_threshold:
        raise ThresholdError("low_threshold must not exceed high_threshold")
    values = np.asarray(values, dtype=float)
    if values.ndim != 1:
        raise ThresholdError("analog_to_digital_hysteresis expects a 1-D trace")
    digital = np.zeros(values.shape[0], dtype=np.int8)
    state = 1 if values.size and values[0] >= high_threshold else 0
    for i, value in enumerate(values):
        if state == 0 and value >= high_threshold:
            state = 1
        elif state == 1 and value < low_threshold:
            state = 0
        digital[i] = state
    return digital


def digitize_matrix(matrix: np.ndarray, threshold: float) -> np.ndarray:
    """Digitise a (samples x species) matrix column-wise with one threshold."""
    if threshold <= 0:
        raise ThresholdError(f"threshold must be positive, got {threshold!r}")
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ThresholdError("digitize_matrix expects a 2-D (samples x species) array")
    return (matrix >= threshold).astype(np.int8)
