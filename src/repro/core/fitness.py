"""Percentage fitness of the estimated Boolean expression (eq. 3, ``PFoBE``).

``PFoBE = 100 − (Σ_i FOV_EST_i / nc) × 100`` where the sum runs over the
input combinations whose *filtered* output is high, ``FOV_EST_i`` is the
estimated fraction of variation of that combination's output stream, and
``nc`` is the total number of input combinations.  A perfectly stable circuit
(no output oscillation at its logic-1 states) scores 100 %; the score drops
as the logic-1 outputs spend more of their time glitching across the
threshold, which the paper interprets as "how likely it is that the circuit
will actually work after implementation in the laboratory".
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..errors import AnalysisError
from .filters import FilterDecision
from .variation import VariationStats

__all__ = ["percentage_fitness", "fitness_from_analysis"]


def percentage_fitness(fov_values: Iterable[float], n_combinations: int) -> float:
    """Equation (3): fitness from the FOV of each accepted-high combination."""
    fov_values = list(fov_values)
    if n_combinations <= 0:
        raise AnalysisError("n_combinations must be positive")
    for value in fov_values:
        if value < 0:
            raise AnalysisError("fractions of variation cannot be negative")
    return 100.0 - (sum(fov_values) / n_combinations) * 100.0


def fitness_from_analysis(
    stats: Mapping[int, VariationStats],
    decisions: Mapping[int, FilterDecision],
) -> float:
    """PFoBE computed from the per-combination statistics and filter outcomes."""
    if set(stats) != set(decisions):
        raise AnalysisError("statistics and filter decisions cover different combinations")
    n_combinations = len(stats)
    fov_values = [
        stats[index].fraction_of_variation
        for index, decision in decisions.items()
        if decision.is_high
    ]
    return percentage_fitness(fov_values, n_combinations)
