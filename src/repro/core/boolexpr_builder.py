"""Boolean expression construction (Algorithm 1, ``ConstBoolExpr``).

"The Boolean expression is then constructed for each filtered result": the
input combinations whose filtered output is logic-1 are the minterms of the
recovered function.  The expression can be reported either as the canonical
sum of those minterms (exactly what the filtering produced) or minimized with
Quine–McCluskey for readability — the paper prints minimized forms such as
``A'.B.C``.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

from ..errors import AnalysisError
from ..logic.boolexpr import BoolExpr, Const, from_minterms
from ..logic.minimize import minimize
from ..logic.truthtable import TruthTable
from .filters import FilterDecision

__all__ = ["high_combinations", "build_expression", "build_truth_table"]


def high_combinations(decisions: Mapping[int, FilterDecision]) -> List[int]:
    """Combination indices whose filtered output is logic-1, ascending."""
    return sorted(index for index, decision in decisions.items() if decision.is_high)


def build_truth_table(
    decisions: Mapping[int, FilterDecision],
    input_names: Sequence[str],
) -> TruthTable:
    """The recovered truth table over the experiment's input species."""
    input_names = list(input_names)
    expected_rows = 2 ** len(input_names)
    if len(decisions) != expected_rows:
        raise AnalysisError(
            f"filter decisions cover {len(decisions)} combinations but "
            f"{len(input_names)} inputs imply {expected_rows}",
        )
    return TruthTable.from_minterm_indices(high_combinations(decisions), input_names)


def build_expression(
    decisions: Mapping[int, FilterDecision],
    input_names: Sequence[str],
    minimized: bool = True,
) -> BoolExpr:
    """The recovered Boolean expression over the experiment's input species.

    With ``minimized=False`` the canonical sum-of-minterms is returned, which
    maps one-to-one onto the filtered results; ``minimized=True`` (default)
    applies Quine–McCluskey for the compact form the paper reports.
    """
    input_names = list(input_names)
    highs = high_combinations(decisions)
    if not highs:
        return Const(False)
    if len(highs) == 2 ** len(input_names):
        return Const(True)
    if minimized:
        return minimize(len(input_names), highs, variables=input_names)
    return from_minterms(input_names, highs)
