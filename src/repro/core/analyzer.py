"""The logic analysis and verification algorithm (the paper's Algorithm 1).

:class:`LogicAnalyzer` is the package's headline component.  Given the logged
simulation data of an n-input genetic circuit (a
:class:`~repro.vlab.datalog.SimulationDataLog` or raw arrays), a threshold
value and a user-defined acceptable fraction of variation, it

1. digitises the analog traces (``ADC``),
2. groups the samples by applied input combination (``CaseAnalyzer``),
3. computes the stability statistics of every combination's output stream
   (``VariationAnalyzer``),
4. applies the two filters of Section II,
5. constructs the Boolean expression of the circuit (``ConstBoolExpr``), and
6. reports the percentage fitness of that expression (``PFoBE``)

together with everything needed to render the analytics tables of the
paper's Figures 2 and 4 and to verify the circuit against its intended
behaviour.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import AnalysisError
from ..logic.boolexpr import BoolExpr
from ..logic.compare import LogicComparison, compare_tables
from ..logic.patterns import identify_gate
from ..logic.truthtable import TruthTable
from ..vlab.datalog import SimulationDataLog
from .adc import analog_to_digital
from .boolexpr_builder import build_expression, build_truth_table
from .case_analyzer import analyze_cases
from .filters import FilterConfig, apply_filters
from .fitness import fitness_from_analysis
from .variation import analyze_all_variations

__all__ = ["CombinationAnalysis", "LogicAnalysisResult", "LogicAnalyzer", "analyze_logic"]


@dataclass
class CombinationAnalysis:
    """Everything the algorithm derived about one input combination.

    The fields mirror the columns of the paper's Figure 2(b) / Figure 4
    tables: ``case_count`` is ``Case_I``, ``high_count`` is ``High_O``,
    ``variation_count`` is ``Var_O`` and ``fov_est`` is ``FOV_EST``.
    """

    index: int
    label: str
    case_count: int
    high_count: int
    variation_count: int
    fov_est: float
    passes_fov: bool
    passes_majority: bool
    is_high: bool

    @property
    def observed(self) -> bool:
        return self.case_count > 0


@dataclass
class LogicAnalysisResult:
    """Complete output of one run of the analysis algorithm."""

    circuit_name: str
    input_species: List[str]
    output_species: str
    threshold: float
    fov_ud: float
    combinations: List[CombinationAnalysis]
    expression: BoolExpr
    canonical_expression: BoolExpr
    truth_table: TruthTable
    fitness: float
    gate_name: Optional[str]
    analysis_time_seconds: float
    n_samples: int
    comparison: Optional[LogicComparison] = None

    @property
    def n_inputs(self) -> int:
        return len(self.input_species)

    @property
    def high_combination_labels(self) -> List[str]:
        """Input combinations recovered as logic-1, e.g. ``["011"]``."""
        return [c.label for c in self.combinations if c.is_high]

    @property
    def unobserved_combinations(self) -> List[str]:
        """Combinations that never occurred in the data (coverage gaps)."""
        return [c.label for c in self.combinations if not c.observed]

    def combination(self, label_or_index) -> CombinationAnalysis:
        """Look up one combination's analysis by label (``"011"``) or index."""
        if isinstance(label_or_index, str):
            for combination in self.combinations:
                if combination.label == label_or_index:
                    return combination
            raise AnalysisError(f"no combination labelled {label_or_index!r}")
        index = int(label_or_index)
        for combination in self.combinations:
            if combination.index == index:
                return combination
        raise AnalysisError(f"no combination with index {index}")

    def verify(self, expected) -> LogicComparison:
        """Compare the recovered truth table against an expected behaviour.

        ``expected`` may be a :class:`TruthTable`, a Boolean expression
        (string or :class:`BoolExpr`) or a Cello-style hexadecimal name; the
        comparison is stored on the result and returned.
        """
        if isinstance(expected, TruthTable):
            expected_table = expected
        elif isinstance(expected, str) and expected.lower().startswith("0x"):
            expected_table = TruthTable.from_hex(expected, inputs=self.input_species)
        else:
            expected_table = TruthTable.from_expression(expected, inputs=self.input_species)
        self.comparison = compare_tables(expected_table, self.truth_table)
        return self.comparison

    def summary(self) -> str:
        """One-line outcome: expression, fitness and (if verified) the verdict."""
        text = (
            f"{self.circuit_name or self.output_species}: "
            f"{self.expression.to_string()} "
            f"(fitness {self.fitness:.2f}%"
        )
        if self.gate_name:
            text += f", behaves as {self.gate_name}"
        text += ")"
        if self.comparison is not None:
            text += f" — {self.comparison.summary()}"
        return text


class LogicAnalyzer:
    """Configured instance of the paper's logic analysis algorithm.

    Parameters
    ----------
    threshold:
        ``ThVAL``: the molecule count separating digital 0 from 1 for the
        I/O species (the paper uses 15 molecules).
    fov_ud:
        ``FOV_UD``: acceptable fraction of variation (default 0.25).
    input_source:
        ``"applied"`` digitises the inputs from the clamp levels the virtual
        laboratory applied (exact); ``"measured"`` digitises the recorded
        input traces with the same threshold as the output, which is what an
        analysis of externally produced data has to do.
    minimize_expression:
        Report the Quine–McCluskey minimized expression (default) or the
        canonical sum of minterms.
    filter_config:
        Override the filter behaviour (used by the ablation benchmarks).
    """

    def __init__(
        self,
        threshold: float,
        fov_ud: float = 0.25,
        input_source: str = "applied",
        minimize_expression: bool = True,
        filter_config: Optional[FilterConfig] = None,
    ):
        if threshold <= 0:
            raise AnalysisError("threshold must be positive")
        if input_source not in ("applied", "measured"):
            raise AnalysisError("input_source must be 'applied' or 'measured'")
        self.threshold = float(threshold)
        self.input_source = input_source
        self.minimize_expression = minimize_expression
        if filter_config is None:
            filter_config = FilterConfig(fov_ud=fov_ud)
        elif abs(filter_config.fov_ud - fov_ud) > 1e-12 and fov_ud != 0.25:
            raise AnalysisError(
                "pass FOV_UD either through fov_ud or through filter_config, not both",
            )
        self.filter_config = filter_config

    @property
    def fov_ud(self) -> float:
        return self.filter_config.fov_ud

    # -- entry points ------------------------------------------------------------
    def analyze(
        self,
        data: SimulationDataLog,
        expected=None,
        output_species: Optional[str] = None,
    ) -> LogicAnalysisResult:
        """Run the algorithm on a logged experiment.

        ``output_species`` re-targets the analysis at an intermediate species
        (the paper's "Boolean logic analysis ... on the intermediate circuit
        components").  ``expected`` triggers verification against an intended
        behaviour (expression, truth table or hex name).
        """
        if output_species is not None and output_species != data.output_species:
            data = data.with_output(output_species)
        started = time.perf_counter()

        output_digital = analog_to_digital(data.output_trace(), self.threshold)
        if self.input_source == "applied":
            digital_inputs = data.applied_digital_inputs()
        else:
            digital_inputs = data.measured_digital_inputs(self.threshold)
        weights = 2**np.arange(data.n_inputs - 1, -1, -1)
        combination_indices = digital_inputs @ weights

        result = self._analyze_digital(
            combination_indices=combination_indices,
            output_digital=output_digital,
            input_species=data.input_species,
            output_species=data.output_species,
            circuit_name=data.circuit_name,
            started=started,
        )
        if expected is not None:
            result.verify(expected)
        return result

    def analyze_arrays(
        self,
        input_matrix: np.ndarray,
        output_trace: np.ndarray,
        input_species: Sequence[str],
        output_species: str = "output",
        circuit_name: str = "",
        inputs_are_digital: bool = False,
        expected=None,
    ) -> LogicAnalysisResult:
        """Run the algorithm on raw arrays (no :class:`SimulationDataLog` needed).

        ``input_matrix`` has one column per input species; columns are
        digitised with the analyzer's threshold unless ``inputs_are_digital``.
        """
        started = time.perf_counter()
        input_matrix = np.asarray(input_matrix)
        output_trace = np.asarray(output_trace, dtype=float)
        if input_matrix.ndim == 1:
            input_matrix = input_matrix.reshape(-1, 1)
        if input_matrix.shape[1] != len(list(input_species)):
            raise AnalysisError(
                f"input matrix has {input_matrix.shape[1]} columns but "
                f"{len(list(input_species))} input species were named",
            )
        if input_matrix.shape[0] != output_trace.shape[0]:
            raise AnalysisError("input matrix and output trace have different lengths")
        if inputs_are_digital:
            digital_inputs = (input_matrix > 0).astype(np.int8)
        else:
            digital_inputs = (np.asarray(input_matrix, dtype=float) >= self.threshold).astype(
                np.int8,
            )
        output_digital = (
            output_trace.astype(np.int8)
            if output_trace.dtype.kind in "iub" and set(np.unique(output_trace)) <= {0, 1}
            else analog_to_digital(output_trace, self.threshold)
        )
        n_inputs = digital_inputs.shape[1]
        weights = 2**np.arange(n_inputs - 1, -1, -1)
        combination_indices = digital_inputs @ weights
        result = self._analyze_digital(
            combination_indices=combination_indices,
            output_digital=output_digital,
            input_species=list(input_species),
            output_species=output_species,
            circuit_name=circuit_name,
            started=started,
        )
        if expected is not None:
            result.verify(expected)
        return result

    # -- core ----------------------------------------------------------------------
    def _analyze_digital(
        self,
        combination_indices: np.ndarray,
        output_digital: np.ndarray,
        input_species: Sequence[str],
        output_species: str,
        circuit_name: str,
        started: float,
    ) -> LogicAnalysisResult:
        input_species = list(input_species)
        n_inputs = len(input_species)

        cases = analyze_cases(combination_indices, output_digital, n_inputs)
        stats = analyze_all_variations(cases)
        decisions = apply_filters(stats, self.filter_config)

        expression = build_expression(decisions, input_species, minimized=self.minimize_expression)
        canonical = build_expression(decisions, input_species, minimized=False)
        table = build_truth_table(decisions, input_species)
        fitness = fitness_from_analysis(stats, decisions)

        combinations = [
            CombinationAnalysis(
                index=index,
                label=cases[index].label,
                case_count=stats[index].case_count,
                high_count=stats[index].high_count,
                variation_count=stats[index].variation_count,
                fov_est=stats[index].fraction_of_variation,
                passes_fov=decisions[index].passes_fov,
                passes_majority=decisions[index].passes_majority,
                is_high=decisions[index].is_high,
            )
            for index in sorted(cases)
        ]
        elapsed = time.perf_counter() - started
        return LogicAnalysisResult(
            circuit_name=circuit_name,
            input_species=input_species,
            output_species=output_species,
            threshold=self.threshold,
            fov_ud=self.fov_ud,
            combinations=combinations,
            expression=expression,
            canonical_expression=canonical,
            truth_table=table,
            fitness=fitness,
            gate_name=identify_gate(table),
            analysis_time_seconds=elapsed,
            n_samples=int(np.asarray(output_digital).shape[0]),
        )


def analyze_logic(
    data: SimulationDataLog,
    threshold: float,
    fov_ud: float = 0.25,
    expected=None,
    input_source: str = "applied",
) -> LogicAnalysisResult:
    """One-call convenience wrapper around :class:`LogicAnalyzer`."""
    analyzer = LogicAnalyzer(threshold=threshold, fov_ud=fov_ud, input_source=input_source)
    return analyzer.analyze(data, expected=expected)
