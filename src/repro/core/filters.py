"""The two data filters of the paper (Section II, equations (1) and (2)).

A combination is accepted as producing a logic-1 output only when *both*
filters pass:

* **fraction-of-variation filter** (eq. 1): the estimated fraction of
  variation ``FOV_EST = Var_O / Case_I`` must be below the user-defined
  ``FOV_UD`` (the paper uses 0.25) — an output that keeps oscillating around
  the threshold for a combination is not a stable logic-1;
* **majority filter** (eq. 2): the number of logic-1 samples must exceed half
  the stream length (``HIGH_O > Case_I / 2``) — a brief glitch (such as the
  decaying output right after a high→low input switch) must not count as a
  logic-1 state.

The paper stresses that *either filter alone produces wrong Boolean
expressions* (an AND gate is mis-identified as XNOR with only the majority
filter; a highly oscillatory state is accepted with only the FOV filter);
``FilterConfig`` lets the ablation benchmark disable them individually to
reproduce exactly that observation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from ..errors import AnalysisError
from .variation import VariationStats

__all__ = ["FilterConfig", "FilterDecision", "apply_filters"]

#: The paper's default acceptable fraction of variation.
DEFAULT_FOV_UD = 0.25


@dataclass(frozen=True)
class FilterConfig:
    """Configuration of the two output-stream filters.

    ``fov_ud`` is the user-defined acceptable fraction of variation
    (``FOV_UD``).  The two ``use_*`` switches exist for the ablation study;
    production analyses keep both enabled, as the paper prescribes.
    ``majority_strict`` selects ``>`` (the paper's equation 2) versus ``>=``
    for the majority comparison — the difference only matters for exactly
    half-high streams and is covered by a dedicated ablation benchmark.
    """

    fov_ud: float = DEFAULT_FOV_UD
    use_fov_filter: bool = True
    use_majority_filter: bool = True
    majority_strict: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.fov_ud <= 1.0:
            raise AnalysisError(
                f"FOV_UD must be within (0, 1], got {self.fov_ud!r}",
            )


@dataclass(frozen=True)
class FilterDecision:
    """Outcome of filtering one input combination."""

    passes_fov: bool
    passes_majority: bool
    is_high: bool

    @property
    def rejected_by_fov_only(self) -> bool:
        return self.passes_majority and not self.passes_fov

    @property
    def rejected_by_majority_only(self) -> bool:
        return self.passes_fov and not self.passes_majority


def _passes_fov(stats: VariationStats, config: FilterConfig) -> bool:
    if not config.use_fov_filter:
        return True
    return stats.fraction_of_variation < config.fov_ud


def _passes_majority(stats: VariationStats, config: FilterConfig) -> bool:
    if not config.use_majority_filter:
        return True
    if stats.case_count == 0:
        return False
    half = stats.case_count / 2.0
    if config.majority_strict:
        return stats.high_count > half
    return stats.high_count >= half


def apply_filters(
    stats: Mapping[int, VariationStats],
    config: FilterConfig | None = None,
) -> Dict[int, FilterDecision]:
    """Apply both filters to every combination's statistics.

    A combination that was never observed (``case_count == 0``) is never
    high.  A combination whose output was never high passes trivially as a
    logic-0 state (the filters only arbitrate combinations "at which the
    output is high at least once", as the paper puts it).
    """
    config = config or FilterConfig()
    decisions: Dict[int, FilterDecision] = {}
    for index, stat in stats.items():
        if stat.case_count == 0 or not stat.ever_high:
            decisions[index] = FilterDecision(
                passes_fov=True,
                passes_majority=False,
                is_high=False,
            )
            continue
        fov_ok = _passes_fov(stat, config)
        majority_ok = _passes_majority(stat, config)
        decisions[index] = FilterDecision(
            passes_fov=fov_ok,
            passes_majority=majority_ok,
            is_high=fov_ok and majority_ok,
        )
    return decisions
