"""Per-input-combination grouping of samples (Algorithm 1, ``CaseAnalyzer``).

"CaseAnalyzer analyzes the number of times each input combination occurs and
logs their corresponding output binary data streams."  Each sample of the
experiment belongs to exactly one input combination (the one applied at that
sample); the case analyzer counts the samples per combination (``Case_I``)
and extracts, in time order, the digital output value at each of those
samples (the combination's *output data stream*).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..errors import AnalysisError
from ..logic.boolexpr import minterm_string

__all__ = ["CaseStream", "analyze_cases"]


@dataclass
class CaseStream:
    """The logged data of one input combination.

    Attributes
    ----------
    index:
        Combination index (first input is the most significant bit).
    label:
        The combination as the paper writes it, e.g. ``"011"``.
    output_stream:
        Digital output values at the samples where this combination was
        applied, in time order.  Its length is ``Case_I`` for this
        combination ("the value of Case_I[i] will always be equivalent to the
        length of its corresponding output data stream").
    """

    index: int
    label: str
    output_stream: np.ndarray

    def __post_init__(self) -> None:
        self.output_stream = np.asarray(self.output_stream, dtype=np.int8)
        if self.output_stream.ndim != 1:
            raise AnalysisError("a case output stream must be 1-D")

    @property
    def case_count(self) -> int:
        """``Case_I[i]``: how many samples saw this input combination."""
        return int(self.output_stream.shape[0])

    @property
    def observed(self) -> bool:
        """True when the combination occurred at least once in the data."""
        return self.case_count > 0


def analyze_cases(
    combination_indices: np.ndarray,
    output_digital: np.ndarray,
    n_inputs: int,
) -> Dict[int, CaseStream]:
    """Group the digital output stream by applied input combination.

    Parameters
    ----------
    combination_indices:
        Per-sample combination index (e.g. from
        :meth:`repro.vlab.datalog.SimulationDataLog.applied_combination_indices`
        or from digitised measured inputs).
    output_digital:
        Per-sample digital output value (from :func:`repro.core.adc.analog_to_digital`).
    n_inputs:
        Number of circuit inputs; the result has one entry per combination,
        including combinations that never occurred (empty streams), so the
        analyzer can report missing coverage.
    """
    combination_indices = np.asarray(combination_indices, dtype=np.int64)
    output_digital = np.asarray(output_digital, dtype=np.int8)
    if combination_indices.ndim != 1 or output_digital.ndim != 1:
        raise AnalysisError("case analysis expects 1-D sample arrays")
    if combination_indices.shape[0] != output_digital.shape[0]:
        raise AnalysisError(
            f"combination indices ({combination_indices.shape[0]} samples) and output "
            f"stream ({output_digital.shape[0]} samples) have different lengths",
        )
    if n_inputs < 1:
        raise AnalysisError("n_inputs must be at least 1")
    n_combinations = 2**n_inputs
    if combination_indices.size:
        bad_low = int(combination_indices.min())
        bad_high = int(combination_indices.max())
        if bad_low < 0 or bad_high >= n_combinations:
            raise AnalysisError(
                f"combination indices outside [0, {n_combinations}) found "
                f"(min {bad_low}, max {bad_high})",
            )

    cases: Dict[int, CaseStream] = {}
    for index in range(n_combinations):
        stream = output_digital[combination_indices == index]
        cases[index] = CaseStream(
            index=index,
            label=minterm_string(index, n_inputs),
            output_stream=stream,
        )
    return cases
