"""Output-stream stability statistics (Algorithm 1, ``VariationAnalyzer``).

"VariationAnalyzer examines the output data stream and counts how many times
the output oscillates (or varies) between logic-1 and 0.  It first calculates
the number of times a logic-1 appears for a specific input combination ...
It then analyses for each of these input combinations, how many times the
output varies, i.e. changing 0-to-1 and 1-to-0."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

import numpy as np

from ..errors import AnalysisError
from .case_analyzer import CaseStream

__all__ = [
    "VariationStats",
    "count_high",
    "count_variations",
    "analyze_variation",
    "analyze_all_variations",
]


def count_high(stream: np.ndarray) -> int:
    """``HIGH_O``: number of logic-1 samples in an output stream."""
    stream = np.asarray(stream)
    return int(np.count_nonzero(stream))


def count_variations(stream: np.ndarray) -> int:
    """``Var_O``: number of 0→1 plus 1→0 transitions within an output stream."""
    stream = np.asarray(stream, dtype=np.int8)
    if stream.size < 2:
        return 0
    return int(np.count_nonzero(np.diff(stream)))


@dataclass(frozen=True)
class VariationStats:
    """Stability statistics of one input combination's output stream."""

    case_count: int
    high_count: int
    variation_count: int

    def __post_init__(self) -> None:
        if self.case_count < 0 or self.high_count < 0 or self.variation_count < 0:
            raise AnalysisError("variation statistics cannot be negative")
        if self.high_count > self.case_count:
            raise AnalysisError("high_count cannot exceed case_count")

    @property
    def fraction_of_variation(self) -> float:
        """``FOV_EST = Var_O / Case_I`` (0 when the combination was never seen)."""
        if self.case_count == 0:
            return 0.0
        return self.variation_count / self.case_count

    @property
    def high_fraction(self) -> float:
        """``HIGH_O / Case_I`` (0 when the combination was never seen)."""
        if self.case_count == 0:
            return 0.0
        return self.high_count / self.case_count

    @property
    def ever_high(self) -> bool:
        """True when the output was logic-1 at least once for this combination."""
        return self.high_count > 0


def analyze_variation(stream: np.ndarray) -> VariationStats:
    """Compute the variation statistics of one output stream."""
    stream = np.asarray(stream, dtype=np.int8)
    return VariationStats(
        case_count=int(stream.shape[0]),
        high_count=count_high(stream),
        variation_count=count_variations(stream),
    )


def analyze_all_variations(cases: Mapping[int, CaseStream]) -> Dict[int, VariationStats]:
    """Variation statistics for every input combination of a case analysis."""
    return {index: analyze_variation(case.output_stream) for index, case in cases.items()}
