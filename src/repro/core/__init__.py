"""The paper's contribution: the logic analysis and verification algorithm."""

from .adc import analog_to_digital, analog_to_digital_hysteresis, digitize_matrix
from .analyzer import (
    CombinationAnalysis,
    LogicAnalysisResult,
    LogicAnalyzer,
    analyze_logic,
)
from .boolexpr_builder import build_expression, build_truth_table, high_combinations
from .case_analyzer import CaseStream, analyze_cases
from .filters import DEFAULT_FOV_UD, FilterConfig, FilterDecision, apply_filters
from .fitness import fitness_from_analysis, percentage_fitness
from .report import format_analysis_report, format_case_table, format_suite_table
from .variation import (
    VariationStats,
    analyze_all_variations,
    analyze_variation,
    count_high,
    count_variations,
)

__all__ = [
    "analog_to_digital",
    "analog_to_digital_hysteresis",
    "digitize_matrix",
    "CaseStream",
    "analyze_cases",
    "VariationStats",
    "analyze_variation",
    "analyze_all_variations",
    "count_high",
    "count_variations",
    "FilterConfig",
    "FilterDecision",
    "apply_filters",
    "DEFAULT_FOV_UD",
    "build_expression",
    "build_truth_table",
    "high_combinations",
    "percentage_fitness",
    "fitness_from_analysis",
    "CombinationAnalysis",
    "LogicAnalysisResult",
    "LogicAnalyzer",
    "analyze_logic",
    "format_case_table",
    "format_analysis_report",
    "format_suite_table",
]
