"""Textual reports of analysis results.

The benchmarks print the same artefacts the paper's figures show: the
per-combination analytics table of Figures 2(b) and 4 (``Case_I``,
``High_O``, ``Var_O``, the recovered output state), the Boolean expression,
the percentage fitness, and — for the 15-circuit suite — a one-row-per-circuit
verification table.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from .analyzer import LogicAnalysisResult

__all__ = ["format_case_table", "format_analysis_report", "format_suite_table"]


def _render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Minimal fixed-width table renderer (no external dependencies)."""
    columns = len(headers)
    widths = [len(h) for h in headers]
    for row in rows:
        for i in range(columns):
            widths[i] = max(widths[i], len(row[i]))
    def fmt(row):
        return "  ".join(str(cell).rjust(widths[i]) for i, cell in enumerate(row))
    lines = [fmt(headers), "  ".join("-" * w for w in widths)]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def format_case_table(result: LogicAnalysisResult) -> str:
    """The Figure 2(b) / Figure 4 analytics table for one analysis."""
    headers = ["Input", "Case_I", "High_O", "Var_O", "FOV_EST", "FOV<UD", "HIGH>half", "Output"]
    rows = []
    for combination in result.combinations:
        rows.append(
            [
                combination.label,
                str(combination.case_count),
                str(combination.high_count),
                str(combination.variation_count),
                f"{combination.fov_est:.4f}",
                "yes" if combination.passes_fov else "no",
                "yes" if combination.passes_majority else "no",
                "1" if combination.is_high else "0",
            ],
        )
    return _render_table(headers, rows)


def format_analysis_report(result: LogicAnalysisResult, title: Optional[str] = None) -> str:
    """Full multi-line report: settings, analytics table, expression, fitness."""
    lines: List[str] = []
    name = title or result.circuit_name or result.output_species
    lines.append(f"Logic analysis of {name}")
    lines.append(
        f"  inputs: {', '.join(result.input_species)}   output: {result.output_species}",
    )
    lines.append(
        f"  threshold: {result.threshold:g} molecules   FOV_UD: {result.fov_ud:g}   "
        f"samples: {result.n_samples}",
    )
    lines.append("")
    lines.append(format_case_table(result))
    lines.append("")
    lines.append(
        f"  Boolean expression : {result.output_species} = {result.expression.to_string()}",
    )
    lines.append(
        f"  algebraic form     : {result.output_species} = {result.expression.to_algebraic()}",
    )
    lines.append(f"  truth table        : {result.truth_table.to_hex()}")
    if result.gate_name:
        lines.append(f"  named behaviour    : {result.gate_name}")
    lines.append(f"  percentage fitness : {result.fitness:.2f}%")
    lines.append(f"  analysis time      : {result.analysis_time_seconds * 1000:.1f} ms")
    if result.unobserved_combinations:
        lines.append(
            "  WARNING: combinations never observed: "
            + ", ".join(result.unobserved_combinations),
        )
    if result.comparison is not None:
        lines.append(f"  verification       : {result.comparison.summary()}")
    return "\n".join(lines)


def format_suite_table(
    entries: Iterable[dict],
    title: str = "Verification of the circuit suite",
) -> str:
    """The 15-circuit suite summary table.

    ``entries`` are dictionaries with keys ``name``, ``n_inputs``,
    ``n_gates``, ``n_components``, ``expected``, ``recovered``, ``fitness``
    and ``match`` (see the suite benchmark for the producer side).
    """
    headers = [
        "Circuit",
        "Inputs",
        "Gates",
        "Parts",
        "Expected",
        "Recovered",
        "Fitness%",
        "Verdict",
    ]
    rows = []
    for entry in entries:
        rows.append(
            [
                str(entry.get("name", "?")),
                str(entry.get("n_inputs", "?")),
                str(entry.get("n_gates", "?")),
                str(entry.get("n_components", "?")),
                str(entry.get("expected", "?")),
                str(entry.get("recovered", "?")),
                f"{entry.get('fitness', float('nan')):.2f}",
                "OK" if entry.get("match") else "WRONG",
            ],
        )
    return f"{title}\n" + _render_table(headers, rows)
