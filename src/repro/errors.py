"""Exception hierarchy used across the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so a
caller embedding the toolchain can catch a single base class.  Subclasses are
grouped by subsystem (model construction, parsing, simulation, analysis) so
that callers who care can distinguish, e.g., a malformed SBML document from a
simulation that diverged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the :mod:`repro` package."""


class ModelError(ReproError):
    """A model (SBML, SBOL or gate netlist) is structurally invalid."""


class DuplicateIdError(ModelError):
    """An identifier was added twice to the same model or document."""

    def __init__(self, kind: str, identifier: str):
        super().__init__(f"duplicate {kind} id {identifier!r}")
        self.kind = kind
        self.identifier = identifier


class UnknownIdError(ModelError):
    """A reference points at an identifier that does not exist."""

    def __init__(self, kind: str, identifier: str):
        super().__init__(f"unknown {kind} id {identifier!r}")
        self.kind = kind
        self.identifier = identifier


class ValidationError(ModelError):
    """Aggregated result of a failed model validation pass."""

    def __init__(self, messages):
        messages = list(messages)
        super().__init__(
            "model validation failed:\n" + "\n".join(f"  - {m}" for m in messages),
        )
        self.messages = messages


class ParseError(ReproError):
    """A textual artefact (math expression, SBML/SBOL XML, CSV) is malformed."""


class MathParseError(ParseError):
    """An infix math expression could not be parsed."""

    def __init__(self, text: str, position: int, message: str):
        super().__init__(f"cannot parse {text!r} at position {position}: {message}")
        self.text = text
        self.position = position


class SBMLParseError(ParseError):
    """An SBML document could not be parsed into a :class:`repro.sbml.Model`."""


class SBOLParseError(ParseError):
    """An SBOL document could not be parsed."""


class ConversionError(ReproError):
    """SBOL to SBML conversion failed (e.g. a part with no behaviour)."""


class SimulationError(ReproError):
    """A simulation could not be carried out."""


class PropensityError(SimulationError):
    """A kinetic law could not be compiled into a propensity function."""


class NegativeStateError(SimulationError):
    """A species count went negative (tau-leaping step too large)."""

    def __init__(self, species: str, value: float, time: float):
        super().__init__(
            f"species {species!r} became negative ({value}) at t={time:g}",
        )
        self.species = species
        self.value = value
        self.time = time


class ExperimentError(ReproError):
    """A virtual-laboratory experiment was configured incorrectly."""


class EngineError(ReproError):
    """The ensemble execution engine was misused (bad job, executor or seed)."""


class AnalysisError(ReproError):
    """The logic analysis algorithm received inconsistent inputs."""


class ThresholdError(AnalysisError):
    """A threshold value could not be estimated or is invalid."""


class SynthesisError(ReproError):
    """A truth table could not be synthesised into a gate netlist."""


class NetlistError(ModelError):
    """A gate netlist is structurally invalid (cycles, dangling nets...)."""
