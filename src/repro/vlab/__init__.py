"""Virtual laboratory: stimulus protocols, experiments, threshold and timing analysis.

This package replaces the interactive D-VASim workflow the paper uses to
produce its simulation data: it clamps input species through protocols, runs
the stochastic simulators, logs traces, and estimates the two circuit
parameters the analysis algorithm needs (threshold value and propagation
delay).
"""

from .datalog import SimulationDataLog
from .experiment import LogicExperiment, run_logic_experiment
from .propagation import PropagationDelayAnalysis, estimate_propagation_delay
from .protocol import (
    StimulusProtocol,
    custom_protocol,
    exhaustive_protocol,
    gray_code_protocol,
    random_protocol,
)
from .threshold import (
    ThresholdAnalysis,
    aestimate_threshold,
    estimate_threshold,
    settled_output_levels,
)

__all__ = [
    "StimulusProtocol",
    "exhaustive_protocol",
    "gray_code_protocol",
    "random_protocol",
    "custom_protocol",
    "SimulationDataLog",
    "LogicExperiment",
    "run_logic_experiment",
    "ThresholdAnalysis",
    "estimate_threshold",
    "aestimate_threshold",
    "settled_output_levels",
    "PropagationDelayAnalysis",
    "estimate_propagation_delay",
]
