"""Propagation-delay analysis.

The second circuit parameter the paper's methodology needs: "Propagation
delay specifies the time required to reflect the changes in input species
concentrations on the concentration of output species."  Each input
combination must be held for at least this long, otherwise the recovered
logic is wrong (the paper demonstrates exactly this failure on circuit
``0x0B``'s ``011 → 100`` transition).

The delay is measured the same way D-VASim's timing analysis does: start from
the settled state of one input combination, switch to another combination
that flips the output, and record how long the output takes to cross the
digital threshold.  The reported propagation delay of the circuit is the
maximum (worst case) over the examined transitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..engine.api import run_ensemble
from ..engine.executors import get_executor
from ..engine.jobs import SimulationJob
from ..engine.spec import canonical_workers
from ..errors import AnalysisError, SimulationError, ThresholdError
from ..logic.truthtable import TruthTable
from ..sbml.model import Model
from ..stochastic import canonical_simulator_name
from ..stochastic.events import InputSchedule
from ..stochastic.rng import RandomState, fan_out_seeds

__all__ = ["PropagationDelayAnalysis", "estimate_propagation_delay"]


@dataclass
class PropagationDelayAnalysis:
    """Per-transition and worst-case propagation delays of a circuit output."""

    delays: Dict[Tuple[str, str], float]
    threshold: float
    output_species: str
    settle_time: float

    @property
    def worst_case(self) -> float:
        """The circuit's propagation delay: the slowest observed transition."""
        if not self.delays:
            return 0.0
        return max(self.delays.values())

    @property
    def mean_delay(self) -> float:
        if not self.delays:
            return 0.0
        return float(np.mean(list(self.delays.values())))

    def recommended_hold_time(self, safety_factor: float = 3.0) -> float:
        """A hold time comfortably above the worst-case delay."""
        if safety_factor <= 1.0:
            raise AnalysisError("safety_factor must exceed 1")
        return self.worst_case * safety_factor

    def summary(self) -> str:
        return (
            f"propagation delay({self.output_species}) worst-case {self.worst_case:.1f}, "
            f"mean {self.mean_delay:.1f} over {len(self.delays)} transitions "
            f"(threshold {self.threshold:g})"
        )


def _first_crossing_time(
    times: np.ndarray,
    values: np.ndarray,
    threshold: float,
    rising: bool,
) -> Optional[float]:
    """First time the trace crosses the threshold in the requested direction."""
    if rising:
        hits = np.nonzero(values >= threshold)[0]
    else:
        hits = np.nonzero(values < threshold)[0]
    if hits.size == 0:
        return None
    return float(times[hits[0]])


def estimate_propagation_delay(
    model: Model,
    input_species: Sequence[str],
    output_species: str,
    threshold: float,
    input_high: float = 40.0,
    input_low: float = 0.0,
    settle_time: float = 300.0,
    observation_time: float = 300.0,
    simulator: str = "ode",
    rng: RandomState = None,
    expected_table: Optional[TruthTable] = None,
    transitions: Optional[Sequence[Tuple[str, str]]] = None,
    workers: Optional[int] = None,
    executor=None,
    *,
    jobs: Optional[int] = None,
) -> PropagationDelayAnalysis:
    """Measure output propagation delays across input-combination switches.

    By default every pair of combinations that flips the *expected* output is
    examined (the expected table is computed from settled levels when not
    supplied); pass ``transitions`` (pairs of combination strings such as
    ``("011", "100")``) to restrict the measurement.

    The analysis runs (up to) two ensemble-engine batches — the settled-levels
    phase and the transition phase — on **one** executor: with ``workers=N``
    a single worker pool is opened for the whole analysis, so the transition
    batch hits the compiled-model caches the settle batch warmed up
    (``jobs=`` is a deprecated alias).  Pass an opened ``executor`` to extend
    that reuse across several analyses; it is left open for the caller.  Each
    transition trace is reduced to its crossing time as it completes, so no
    batch is ever materialized.
    """
    workers = canonical_workers(workers, jobs, default=1)
    if threshold <= 0:
        raise ThresholdError("threshold must be positive")
    try:
        simulator = canonical_simulator_name(simulator)
    except SimulationError as error:
        raise AnalysisError(str(error)) from None
    input_species = list(input_species)
    n = len(input_species)

    # The settled-levels phase and the transition phase both fan seeds out;
    # give each its own child root so an integer seed does not make the two
    # phases replay identical streams pairwise.
    if isinstance(rng, np.random.Generator):
        settle_seed = transition_seed = rng
    else:
        root = rng if isinstance(rng, np.random.SeedSequence) else (
            np.random.SeedSequence(int(rng) if rng is not None else None)
        )
        settle_seed, transition_seed = root.spawn(2)

    # One executor serves both batches of the analysis: the transition batch
    # reuses the (still-live) worker pool — and therefore the worker-side
    # compiled-model caches — that the settled-levels batch warmed up.
    owns_executor = executor is None
    runner = executor if executor is not None else get_executor(workers)
    try:
        if expected_table is None:
            from .threshold import settled_output_levels

            levels = settled_output_levels(
                model,
                input_species,
                output_species,
                input_high=input_high,
                input_low=input_low,
                settle_time=settle_time,
                simulator=simulator,
                rng=settle_seed,
                executor=runner,
            )
            outputs = [1 if levels[format(i, f"0{n}b")] >= threshold else 0 for i in range(2**n)]
            expected_table = TruthTable(input_species, outputs)

        if transitions is None:
            transitions = []
            for source in range(2**n):
                for target in range(2**n):
                    if source == target:
                        continue
                    if expected_table.outputs[source] != expected_table.outputs[target]:
                        transitions.append(
                            (format(source, f"0{n}b"), format(target, f"0{n}b")),
                        )

        total = settle_time + observation_time
        transition_jobs = []
        seeds = fan_out_seeds(transition_seed, len(transitions))
        for (source_label, target_label), seed in zip(transitions, seeds):
            source_bits = [int(b) for b in source_label]
            target_bits = [int(b) for b in target_label]
            if len(source_bits) != n or len(target_bits) != n:
                raise AnalysisError(
                    f"transition ({source_label!r}, {target_label!r}) does not match "
                    f"{n} inputs",
                )
            source_settings = {
                sid: (input_high if bit else input_low)
                for sid, bit in zip(input_species, source_bits)
            }
            target_settings = {
                sid: (input_high if bit else input_low)
                for sid, bit in zip(input_species, target_bits)
            }
            schedule = InputSchedule().add(0.0, source_settings).add(settle_time, target_settings)
            transition_jobs.append(
                SimulationJob(
                    model=model,
                    t_end=total,
                    simulator=simulator,
                    schedule=schedule,
                    sample_interval=max(total / 600.0, 0.25),
                    seed=seed,
                    tag=(source_label, target_label),
                ),
            )

        def _delay(index, job, trajectory) -> Tuple[Tuple[str, str], float]:
            source_label, target_label = job.tag
            after = trajectory.slice_time(settle_time, total)
            rising = expected_table.output_for(target_label) == 1
            crossing = _first_crossing_time(
                after.times,
                after[output_species],
                threshold,
                rising,
            )
            if crossing is None:
                # The output never crossed within the observation window: report
                # the full window as a lower bound rather than dropping the
                # transition silently.
                return (source_label, target_label), float(observation_time)
            return (source_label, target_label), float(crossing - settle_time)

        delays: Dict[Tuple[str, str], float] = {}
        if transition_jobs:
            ensemble = run_ensemble(transition_jobs, executor=runner, reduce=_delay)
            delays = dict(ensemble.reduced)

        return PropagationDelayAnalysis(
            delays=delays,
            threshold=float(threshold),
            output_species=output_species,
            settle_time=float(settle_time),
        )
    finally:
        if owns_executor:
            runner.close()
