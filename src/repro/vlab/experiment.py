"""Virtual-laboratory experiment driver (the D-VASim workflow, batch style).

A :class:`LogicExperiment` runs a circuit model through a stimulus protocol
with one of the stochastic simulators, records every species at a fixed
sample interval, and returns a :class:`~repro.vlab.datalog.SimulationDataLog`
ready for the logic-analysis algorithm.  It is the programmatic equivalent of
sitting in front of D-VASim, toggling the input species and logging the run.

Execution is delegated to the ensemble engine: :meth:`LogicExperiment.job`
describes the run declaratively and :meth:`LogicExperiment.run` submits it
through :func:`repro.engine.run_job`, so even single runs share the
compiled-model cache, and multi-run studies can batch many jobs from one
experiment through :func:`repro.engine.run_ensemble`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from ..engine.api import EnsembleStream, iter_ensemble, replicate_jobs, run_job
from ..engine.jobs import SimulationJob
from ..errors import ExperimentError, SimulationError
from ..gates.circuits import GeneticCircuit
from ..sbml.model import Model
from ..stochastic import canonical_simulator_name
from ..stochastic.rng import RandomState
from ..stochastic.trajectory import Trajectory
from .datalog import SimulationDataLog
from .protocol import StimulusProtocol, exhaustive_protocol

__all__ = ["LogicExperiment", "run_logic_experiment"]


@dataclass
class LogicExperiment:
    """Configuration of one logic-characterisation experiment.

    Parameters
    ----------
    model:
        The SBML model to simulate.
    input_species / output_species:
        Which species are the circuit inputs and which single species is the
        output under analysis.
    input_high / input_low:
        Molecule counts used to clamp an input at digital 1 / 0.
    sample_interval:
        Trace sampling interval (the paper samples once per time unit).
    simulator:
        One of ``"ssa"``, ``"next-reaction"``, ``"tau-leap"``, ``"ode"``.
    """

    model: Model
    input_species: List[str]
    output_species: str
    input_high: float = 40.0
    input_low: float = 0.0
    sample_interval: float = 1.0
    simulator: str = "ssa"
    record_species: Optional[List[str]] = None
    circuit_name: str = ""

    def __post_init__(self) -> None:
        self.input_species = list(self.input_species)
        if not self.input_species:
            raise ExperimentError("an experiment needs at least one input species")
        try:
            self.simulator = canonical_simulator_name(self.simulator)
        except SimulationError as error:
            raise ExperimentError(str(error)) from None
        missing = [
            sid
            for sid in self.input_species + [self.output_species]
            if sid not in self.model.species
        ]
        if missing:
            raise ExperimentError(
                f"species {missing} do not exist in model {self.model.sid!r}",
            )
        for sid in self.input_species:
            species = self.model.species[sid]
            if not (species.boundary_condition or species.constant):
                raise ExperimentError(
                    f"input species {sid!r} is not a boundary species; the virtual "
                    "laboratory can only clamp boundary species",
                )
        if self.output_species in self.input_species:
            raise ExperimentError("the output species cannot also be an input")
        if self.input_high <= self.input_low:
            raise ExperimentError("input_high must exceed input_low")
        if self.sample_interval <= 0:
            raise ExperimentError("sample_interval must be positive")

    # -- factory -----------------------------------------------------------------
    @classmethod
    def for_circuit(
        cls,
        circuit: GeneticCircuit,
        simulator: str = "ssa",
        sample_interval: float = 1.0,
        input_high: Optional[float] = None,
        input_low: Optional[float] = None,
        output_species: Optional[str] = None,
    ) -> "LogicExperiment":
        """Build an experiment for a :class:`GeneticCircuit` using its library levels."""
        levels = circuit.input_levels()
        high = input_high if input_high is not None else max(v["high"] for v in levels.values())
        low = input_low if input_low is not None else min(v["low"] for v in levels.values())
        return cls(
            model=circuit.model,
            input_species=list(circuit.inputs),
            output_species=output_species or circuit.output,
            input_high=high,
            input_low=low,
            sample_interval=sample_interval,
            simulator=simulator,
            circuit_name=circuit.name,
        )

    @classmethod
    def for_spec(cls, spec) -> "LogicExperiment":
        """Build the experiment a :class:`~repro.engine.StudySpec` describes.

        The canonical-spec twin of :meth:`for_circuit`: the circuit is
        resolved through the spec (name registry or attached instance), the
        simulator and sampling interval come from the spec's fields, and the
        clamp levels fall back to the circuit's library levels exactly as the
        legacy keyword path does — so a spec-built experiment runs the same
        jobs, bit for bit, as the keyword form it replaced.
        """
        return cls.for_circuit(
            spec.resolve_circuit(),
            simulator=spec.simulator,
            sample_interval=spec.sample_interval,
        )

    # -- execution -----------------------------------------------------------------
    def job(
        self,
        protocol: Optional[StimulusProtocol] = None,
        hold_time: float = 250.0,
        repeats: int = 1,
        seed: RandomState = None,
        total_time: Optional[float] = None,
        overrides: Optional[dict] = None,
    ) -> SimulationJob:
        """Describe this experiment as an engine :class:`SimulationJob`.

        Either pass an explicit ``protocol`` or let the experiment build an
        exhaustive one (every input combination, ascending order, held for
        ``hold_time`` and repeated ``repeats`` times).  ``total_time`` pads
        the simulation past the protocol's end (rarely needed).

        Multi-run studies build one job per run (varying only the seed, via
        :func:`repro.engine.replicate_jobs`) and submit them together through
        :func:`repro.engine.run_ensemble`; :meth:`datalog_from` then turns
        each returned trajectory back into a :class:`SimulationDataLog`.
        """
        if protocol is None:
            protocol = exhaustive_protocol(len(self.input_species), hold_time, repeats)
        if protocol.n_inputs != len(self.input_species):
            raise ExperimentError(
                f"protocol is for {protocol.n_inputs} inputs but the experiment has "
                f"{len(self.input_species)}",
            )
        schedule = protocol.to_schedule(self.input_species, self.input_high, self.input_low)
        t_end = float(total_time) if total_time is not None else protocol.total_time
        if t_end < protocol.total_time:
            raise ExperimentError("total_time is shorter than the protocol")
        return SimulationJob(
            model=self.model,
            t_end=t_end,
            simulator=self.simulator,
            schedule=schedule,
            sample_interval=self.sample_interval,
            parameter_overrides=dict(overrides) if overrides else None,
            record_species=self.record_species,
            seed=seed,
            meta={"hold_time": protocol.hold_time},
        )

    def datalog_from(self, job: SimulationJob, trajectory: Trajectory) -> SimulationDataLog:
        """Package a trajectory produced by ``job`` into a data log."""
        applied = job.schedule.applied_values(self.input_species, trajectory.times)
        hold_time = (job.meta or {}).get("hold_time", 0.0)
        return SimulationDataLog(
            trajectory=trajectory,
            input_species=list(self.input_species),
            output_species=self.output_species,
            applied_inputs=applied,
            input_high=self.input_high,
            input_low=self.input_low,
            hold_time=hold_time,
            circuit_name=self.circuit_name or self.model.sid,
        )

    def iter_replicates(
        self,
        n_replicates: int,
        protocol: Optional[StimulusProtocol] = None,
        hold_time: float = 250.0,
        repeats: int = 1,
        seed: RandomState = None,
        total_time: Optional[float] = None,
        workers: int = 1,
        executor=None,
        progress=None,
        ordered: bool = True,
        batch_size: int = 1,
    ) -> EnsembleStream:
        """Stream ``n_replicates`` independent seeded runs as data logs.

        Returns an :class:`~repro.engine.EnsembleStream` yielding
        ``(index, datalog)`` as each replicate completes (submission order by
        default; ``ordered=False`` for completion order), so callers can
        write out or analyze each log and let it go — peak memory stays
        bounded by the executor's in-flight window, not ``n_replicates``.
        The stream's ``.stats`` carry the batch statistics once exhausted.
        Pass an opened ``executor`` to reuse a live worker pool across
        batches; otherwise ``workers=N`` builds (and afterwards closes) one.
        ``batch_size=B`` dispatches the replicates in lockstep batches of up
        to B per worker call (bit-identical, just cheaper dispatch).
        """
        template = self.job(
            protocol=protocol,
            hold_time=hold_time,
            repeats=repeats,
            total_time=total_time,
        )
        stream = iter_ensemble(
            replicate_jobs(template, n_replicates, seed=seed),
            workers=workers,
            executor=executor,
            progress=progress,
            ordered=ordered,
            batch_size=batch_size,
        )
        return stream.transform(
            lambda index,
            job,
            trajectory: (index, self.datalog_from(job, trajectory)),
        )

    def run(
        self,
        protocol: Optional[StimulusProtocol] = None,
        hold_time: float = 250.0,
        repeats: int = 1,
        rng: RandomState = None,
        total_time: Optional[float] = None,
    ) -> SimulationDataLog:
        """Run the experiment through the engine and return the logged data."""
        job = self.job(
            protocol=protocol,
            hold_time=hold_time,
            repeats=repeats,
            seed=rng,
            total_time=total_time,
        )
        return self.datalog_from(job, run_job(job))


def run_logic_experiment(
    circuit: Union[GeneticCircuit, Model],
    input_species: Optional[Sequence[str]] = None,
    output_species: Optional[str] = None,
    hold_time: float = 250.0,
    repeats: int = 1,
    input_high: Optional[float] = None,
    input_low: float = 0.0,
    simulator: str = "ssa",
    sample_interval: float = 1.0,
    protocol: Optional[StimulusProtocol] = None,
    rng: RandomState = None,
) -> SimulationDataLog:
    """One-call convenience wrapper: build the experiment and run it.

    Accepts either a :class:`GeneticCircuit` (inputs/outputs inferred) or a
    raw :class:`Model` plus explicit ``input_species`` / ``output_species``.
    """
    if isinstance(circuit, GeneticCircuit):
        experiment = LogicExperiment.for_circuit(
            circuit,
            simulator=simulator,
            sample_interval=sample_interval,
            input_high=input_high,
            input_low=input_low,
            output_species=output_species,
        )
    else:
        if input_species is None or output_species is None:
            raise ExperimentError(
                "when passing a raw model, input_species and output_species are required",
            )
        experiment = LogicExperiment(
            model=circuit,
            input_species=list(input_species),
            output_species=output_species,
            input_high=input_high if input_high is not None else 40.0,
            input_low=input_low,
            sample_interval=sample_interval,
            simulator=simulator,
        )
    return experiment.run(protocol=protocol, hold_time=hold_time, repeats=repeats, rng=rng)
