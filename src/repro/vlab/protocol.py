"""Input stimulus protocols.

To recover the Boolean behaviour of an n-input circuit, the virtual
laboratory must walk the circuit through input combinations, holding each one
long enough for the output to respond — the paper applies every combination
for at least the circuit's propagation delay (1,000 time units in its
experiments, for a 10,000-unit run).  A :class:`StimulusProtocol` captures
that walk: which combinations, in which order, held for how long.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple


from ..errors import ExperimentError
from ..stochastic.events import InputSchedule
from ..stochastic.rng import make_rng

__all__ = [
    "StimulusProtocol",
    "exhaustive_protocol",
    "gray_code_protocol",
    "random_protocol",
    "custom_protocol",
]


def _gray_code(n_bits: int) -> List[int]:
    """Indices 0..2^n-1 in reflected-Gray-code order."""
    return [i ^ (i >> 1) for i in range(2**n_bits)]


@dataclass
class StimulusProtocol:
    """A sequence of input combinations, each held for a fixed time.

    Attributes
    ----------
    n_inputs:
        Number of circuit inputs.
    combinations:
        Input combinations as bit tuples, in application order.  Combinations
        may repeat (e.g. several sweeps through the truth table).
    hold_time:
        Time units each combination is held; must exceed the circuit's
        propagation delay for the analysis to recover correct logic (the
        paper demonstrates what goes wrong otherwise).
    """

    n_inputs: int
    combinations: List[Tuple[int, ...]]
    hold_time: float

    def __post_init__(self) -> None:
        if self.n_inputs < 1:
            raise ExperimentError("a protocol needs at least one input")
        if self.hold_time <= 0:
            raise ExperimentError("hold_time must be positive")
        if not self.combinations:
            raise ExperimentError("a protocol needs at least one combination")
        cleaned = []
        for combination in self.combinations:
            if len(combination) != self.n_inputs:
                raise ExperimentError(
                    f"combination {tuple(combination)} does not have {self.n_inputs} bits",
                )
            cleaned.append(tuple(int(bool(b)) for b in combination))
        self.combinations = cleaned

    # -- derived quantities ----------------------------------------------------
    @property
    def total_time(self) -> float:
        """Total simulation time the protocol spans."""
        return self.hold_time * len(self.combinations)

    @property
    def n_steps(self) -> int:
        return len(self.combinations)

    def covers_all_combinations(self) -> bool:
        """True when every one of the 2^n combinations appears at least once."""
        return len(set(self.combinations)) == 2**self.n_inputs

    def combination_indices(self) -> List[int]:
        """Combination indices (first input = MSB) in application order."""
        indices = []
        for combination in self.combinations:
            index = 0
            for bit in combination:
                index = (index << 1) | bit
            indices.append(index)
        return indices

    # -- conversion --------------------------------------------------------------
    def to_schedule(
        self,
        input_species: Sequence[str],
        high: float,
        low: float = 0.0,
    ) -> InputSchedule:
        """Convert to an :class:`InputSchedule` clamping the given species."""
        if len(input_species) != self.n_inputs:
            raise ExperimentError(
                f"protocol has {self.n_inputs} inputs but {len(input_species)} species "
                "were supplied",
            )
        return InputSchedule.from_combinations(
            list(input_species),
            self.combinations,
            self.hold_time,
            high,
            low,
        )

    def repeat(self, times: int) -> "StimulusProtocol":
        """A protocol that runs this one ``times`` times back to back."""
        if times < 1:
            raise ExperimentError("repeat count must be at least 1")
        return StimulusProtocol(self.n_inputs, self.combinations * times, self.hold_time)

    def __iter__(self) -> Iterator[Tuple[int, ...]]:
        return iter(self.combinations)

    def __len__(self) -> int:
        return len(self.combinations)


def exhaustive_protocol(
    n_inputs: int,
    hold_time: float,
    repeats: int = 1,
) -> StimulusProtocol:
    """All 2^n combinations in ascending binary order, ``repeats`` times."""
    combinations = []
    for _ in range(max(1, repeats)):
        for index in range(2**n_inputs):
            combinations.append(
                tuple((index >> (n_inputs - 1 - bit)) & 1 for bit in range(n_inputs)),
            )
    return StimulusProtocol(n_inputs, combinations, hold_time)


def gray_code_protocol(
    n_inputs: int,
    hold_time: float,
    repeats: int = 1,
) -> StimulusProtocol:
    """All combinations in Gray-code order (one input flips per step).

    Gray-code ordering minimises the number of simultaneous input flips and
    therefore the length of output transients, which is the gentlest way to
    exercise a slow genetic circuit.
    """
    combinations = []
    for _ in range(max(1, repeats)):
        for index in _gray_code(n_inputs):
            combinations.append(
                tuple((index >> (n_inputs - 1 - bit)) & 1 for bit in range(n_inputs)),
            )
    return StimulusProtocol(n_inputs, combinations, hold_time)


def random_protocol(
    n_inputs: int,
    hold_time: float,
    n_steps: int,
    rng=None,
    ensure_coverage: bool = True,
) -> StimulusProtocol:
    """A random walk over input combinations.

    With ``ensure_coverage`` the first 2^n steps enumerate every combination
    (in random order) so the analysis always sees each one at least once.
    """
    generator = make_rng(rng)
    total = 2**n_inputs
    if n_steps < 1:
        raise ExperimentError("n_steps must be at least 1")
    indices: List[int] = []
    if ensure_coverage:
        if n_steps < total:
            raise ExperimentError(
                f"n_steps={n_steps} cannot cover all {total} combinations; "
                "lower n_inputs, raise n_steps, or pass ensure_coverage=False",
            )
        order = list(range(total))
        generator.shuffle(order)
        indices.extend(order)
    while len(indices) < n_steps:
        indices.append(int(generator.integers(0, total)))
    combinations = [
        tuple((index >> (n_inputs - 1 - bit)) & 1 for bit in range(n_inputs))
        for index in indices
    ]
    return StimulusProtocol(n_inputs, combinations, hold_time)


def custom_protocol(
    combinations: Sequence[Sequence[int]],
    hold_time: float,
) -> StimulusProtocol:
    """A protocol from an explicit list of combinations."""
    combinations = [tuple(c) for c in combinations]
    if not combinations:
        raise ExperimentError("custom protocol needs at least one combination")
    return StimulusProtocol(len(combinations[0]), list(combinations), hold_time)
