"""Threshold-value analysis.

The paper's algorithm needs "the threshold value of I/O species" — the
concentration that separates digital 0 from digital 1 — and obtains it from
D-VASim's threshold-analysis feature (Baig & Madsen, IWBDA 2016).  This
module provides the equivalent: settle the circuit under every input
combination, collect the settled output levels, split them into a low and a
high group at the largest gap, and put the threshold in the middle of that
gap.

The settling runs use the deterministic ODE integrator by default (fast and
noise-free); a stochastic estimate averaged over the tail of SSA runs is also
available for studying how noise shifts the estimate.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


from ..engine.api import run_ensemble
from ..engine.jobs import SimulationJob
from ..engine.spec import canonical_workers
from ..errors import SimulationError, ThresholdError
from ..sbml.model import Model
from ..stochastic import canonical_simulator_name
from ..stochastic.events import InputSchedule
from ..stochastic.rng import RandomState, fan_out_seeds

__all__ = [
    "ThresholdAnalysis",
    "estimate_threshold",
    "aestimate_threshold",
    "settled_output_levels",
]


@dataclass
class ThresholdAnalysis:
    """Result of a threshold estimation.

    ``levels`` maps each input combination (as a bit string, e.g. ``"011"``)
    to the settled output level observed under that combination.  ``low`` and
    ``high`` are the groups the levels were split into.
    """

    threshold: float
    levels: Dict[str, float]
    low_group: List[float]
    high_group: List[float]
    output_species: str

    @property
    def separation(self) -> float:
        """Gap between the highest low-group level and the lowest high-group level."""
        if not self.low_group or not self.high_group:
            return 0.0
        return min(self.high_group) - max(self.low_group)

    def is_separable(self) -> bool:
        """True when the low and high groups do not overlap."""
        return self.separation > 0.0

    def summary(self) -> str:
        return (
            f"threshold({self.output_species}) = {self.threshold:.2f} molecules "
            f"(low group max {max(self.low_group) if self.low_group else 0:.2f}, "
            f"high group min {min(self.high_group) if self.high_group else 0:.2f})"
        )


def settled_output_levels(
    model: Model,
    input_species: Sequence[str],
    output_species: str,
    input_high: float = 40.0,
    input_low: float = 0.0,
    settle_time: float = 300.0,
    simulator: str = "ode",
    rng: RandomState = None,
    tail_fraction: float = 0.25,
    workers: Optional[int] = None,
    executor=None,
    *,
    jobs: Optional[int] = None,
) -> Dict[str, float]:
    """Settled output level for every input combination.

    The model is simulated from its initial state under each clamped input
    combination for ``settle_time`` time units; the level reported is the
    mean over the last ``tail_fraction`` of the run (for the ODE simulator
    this is simply the final value region).  The per-combination settling
    runs execute as one ensemble-engine batch with one independent seed per
    combination; ``workers=N`` spreads them over worker processes (``jobs=``
    is a deprecated alias).  Each run is reduced to its tail mean as it
    completes (the trace itself is dropped), and an opened ``executor`` —
    e.g. the one a propagation-delay analysis holds for its transition batch
    — is reused with its worker caches warm.
    """
    workers = canonical_workers(workers, jobs, default=1)
    try:
        simulator = canonical_simulator_name(simulator)
    except SimulationError as error:
        raise ThresholdError(str(error)) from None
    if not 0 < tail_fraction <= 1:
        raise ThresholdError("tail_fraction must be in (0, 1]")
    input_species = list(input_species)
    n = len(input_species)
    settle_jobs = []
    seeds = fan_out_seeds(rng, 2**n)
    for index in range(2**n):
        bits = [(index >> (n - 1 - i)) & 1 for i in range(n)]
        label = "".join(str(b) for b in bits)
        settings = {
            sid: (input_high if bit else input_low)
            for sid, bit in zip(input_species, bits)
        }
        settle_jobs.append(
            SimulationJob(
                model=model,
                t_end=settle_time,
                simulator=simulator,
                schedule=InputSchedule().add(0.0, settings),
                sample_interval=max(settle_time / 200.0, 0.5),
                seed=seeds[index],
                tag=label,
            ),
        )
    tail_start = settle_time * (1.0 - tail_fraction)
    ensemble = run_ensemble(
        settle_jobs,
        workers=workers,
        executor=executor,
        reduce=lambda index,
        job,
        trajectory: (
            job.tag,
            trajectory.mean(output_species, t_start=tail_start),
        ),
    )
    return dict(ensemble.reduced)


def estimate_threshold(
    model: Model,
    input_species: Sequence[str],
    output_species: str,
    input_high: float = 40.0,
    input_low: float = 0.0,
    settle_time: float = 300.0,
    simulator: str = "ode",
    rng: RandomState = None,
    workers: Optional[int] = None,
    executor=None,
    *,
    jobs: Optional[int] = None,
) -> ThresholdAnalysis:
    """Estimate the digital threshold of the output species.

    The settled levels are sorted and split at the largest gap; the threshold
    is the midpoint of that gap.  If every combination settles to (nearly)
    the same level the circuit output is not binary under these input levels
    and a :class:`ThresholdError` is raised — the same situation the paper
    provokes by driving circuit ``0x0B`` with a 3-molecule input level.
    """
    levels = settled_output_levels(
        model,
        input_species,
        output_species,
        input_high=input_high,
        input_low=input_low,
        settle_time=settle_time,
        simulator=simulator,
        rng=rng,
        workers=canonical_workers(workers, jobs, default=1),
        executor=executor,
    )
    values = sorted(levels.values())
    if len(values) < 2:
        raise ThresholdError("threshold estimation needs at least two input combinations")
    gaps = [(values[i + 1] - values[i], i) for i in range(len(values) - 1)]
    best_gap, split_index = max(gaps)
    spread = values[-1] - values[0]
    if spread <= 1e-9 or best_gap < 0.05 * max(values[-1], 1.0):
        raise ThresholdError(
            "settled output levels are not separable into low and high groups; "
            f"levels observed: { {k: round(v, 2) for k, v in levels.items()} }",
        )
    low_group = values[: split_index + 1]
    high_group = values[split_index + 1 :]
    threshold = 0.5 * (low_group[-1] + high_group[0])
    return ThresholdAnalysis(
        threshold=float(threshold),
        levels=levels,
        low_group=low_group,
        high_group=high_group,
        output_species=output_species,
    )


async def aestimate_threshold(*args, **kwargs) -> ThresholdAnalysis:
    """Async entry point: :func:`estimate_threshold` off the event loop.

    Runs the (blocking) estimation on a worker thread via
    :func:`asyncio.to_thread`, so callers inside an event loop — e.g. a
    service estimating a threshold per uploaded model — never stall it.
    Accepts exactly the arguments of :func:`estimate_threshold`; share a
    warm pool across concurrent scans with ``executor=`` (see
    :func:`repro.engine.gather_studies`).
    """
    return await asyncio.to_thread(estimate_threshold, *args, **kwargs)
