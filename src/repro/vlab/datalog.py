"""Simulation data logs — the ``SDAn`` input of the paper's Algorithm 1.

A :class:`SimulationDataLog` bundles everything the logic-analysis algorithm
needs about one experiment run:

* the sampled trajectory of every recorded species,
* which species are the circuit inputs and which is the output,
* the amounts the input species were *clamped to* at every sample (the
  "applied" inputs, known exactly because the virtual laboratory applied
  them),
* the input high/low clamp levels and the stimulus protocol metadata.

The analyzer can digitise the inputs either from the applied clamp levels
(the default — the experimenter knows what they injected) or from the
measured input traces via the same threshold used for the output, which is
what an analysis of somebody else's logged data would have to do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..errors import AnalysisError
from ..stochastic.trajectory import Trajectory

__all__ = ["SimulationDataLog"]


@dataclass
class SimulationDataLog:
    """Logged data of one virtual-laboratory experiment."""

    trajectory: Trajectory
    input_species: List[str]
    output_species: str
    applied_inputs: Dict[str, np.ndarray]
    input_high: float
    input_low: float = 0.0
    hold_time: Optional[float] = None
    circuit_name: str = ""

    def __post_init__(self) -> None:
        self.input_species = list(self.input_species)
        if not self.input_species:
            raise AnalysisError("a data log needs at least one input species")
        if self.output_species in self.input_species:
            raise AnalysisError("the output species cannot also be an input")
        for sid in self.input_species + [self.output_species]:
            if sid not in self.trajectory:
                raise AnalysisError(f"species {sid!r} is not recorded in the trajectory")
        n = len(self.trajectory)
        self.applied_inputs = {
            k: np.asarray(v, dtype=float) for k, v in self.applied_inputs.items()
        }
        for sid in self.input_species:
            if sid not in self.applied_inputs:
                raise AnalysisError(f"applied input levels missing for {sid!r}")
            if self.applied_inputs[sid].shape != (n,):
                raise AnalysisError(
                    f"applied input levels for {sid!r} have wrong length "
                    f"({self.applied_inputs[sid].shape[0]} != {n})",
                )
        if self.input_high <= self.input_low:
            raise AnalysisError("input_high must exceed input_low")

    # -- basic access ------------------------------------------------------------
    @property
    def n_inputs(self) -> int:
        return len(self.input_species)

    @property
    def n_samples(self) -> int:
        return len(self.trajectory)

    @property
    def times(self) -> np.ndarray:
        return self.trajectory.times

    def output_trace(self) -> np.ndarray:
        """Sampled analog amounts of the output species."""
        return self.trajectory[self.output_species]

    def input_trace(self, species: str) -> np.ndarray:
        """Sampled analog amounts of one input species."""
        if species not in self.input_species:
            raise AnalysisError(f"{species!r} is not an input of this experiment")
        return self.trajectory[species]

    # -- digital views -------------------------------------------------------------
    def applied_digital_inputs(self) -> np.ndarray:
        """(n_samples, n_inputs) matrix of applied digital input values.

        The applied clamp level is digitised against the midpoint of the
        clamp levels, so a level equal to ``input_high`` is 1 and a level
        equal to ``input_low`` is 0 regardless of the analysis threshold.
        """
        midpoint = 0.5 * (self.input_high + self.input_low)
        columns = [
            (self.applied_inputs[sid] > midpoint).astype(np.int8)
            for sid in self.input_species
        ]
        return np.column_stack(columns)

    def measured_digital_inputs(self, threshold: float) -> np.ndarray:
        """(n_samples, n_inputs) matrix of measured inputs digitised at ``threshold``."""
        if threshold <= 0:
            raise AnalysisError("threshold must be positive")
        columns = [
            (self.trajectory[sid] >= threshold).astype(np.int8)
            for sid in self.input_species
        ]
        return np.column_stack(columns)

    def applied_combination_indices(self) -> np.ndarray:
        """Combination index applied at each sample (first input = MSB)."""
        digital = self.applied_digital_inputs()
        weights = 2**np.arange(self.n_inputs - 1, -1, -1)
        return digital @ weights

    # -- manipulation ----------------------------------------------------------------
    def slice_time(self, t_start: float, t_end: float) -> "SimulationDataLog":
        """The portion of the log with ``t_start <= t <= t_end``."""
        mask = (self.times >= t_start) & (self.times <= t_end)
        return SimulationDataLog(
            trajectory=self.trajectory.slice_time(t_start, t_end),
            input_species=list(self.input_species),
            output_species=self.output_species,
            applied_inputs={k: v[mask] for k, v in self.applied_inputs.items()},
            input_high=self.input_high,
            input_low=self.input_low,
            hold_time=self.hold_time,
            circuit_name=self.circuit_name,
        )

    def with_output(self, output_species: str) -> "SimulationDataLog":
        """The same log viewed with a different output species.

        The paper lets users "perform Boolean logic analysis on the entire
        circuit as well as on the intermediate circuit components" by
        selecting which species is treated as the output; this method is that
        selection.
        """
        if output_species == self.output_species:
            return self
        if output_species not in self.trajectory:
            raise AnalysisError(f"species {output_species!r} is not recorded")
        if output_species in self.input_species:
            raise AnalysisError("the output species cannot also be an input")
        return SimulationDataLog(
            trajectory=self.trajectory,
            input_species=list(self.input_species),
            output_species=output_species,
            applied_inputs=dict(self.applied_inputs),
            input_high=self.input_high,
            input_low=self.input_low,
            hold_time=self.hold_time,
            circuit_name=self.circuit_name,
        )

    def recorded_species(self) -> List[str]:
        """All species recorded in the underlying trajectory."""
        return list(self.trajectory.species)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"SimulationDataLog(circuit={self.circuit_name!r}, inputs={self.input_species}, "
            f"output={self.output_species!r}, samples={self.n_samples})"
        )
