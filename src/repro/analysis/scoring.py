"""Refinable candidate scoring: the aggregation core of replicate studies.

A replicate study aggregates per-replicate :class:`LogicAnalysisResult`\\ s
into summary statistics (mean fitness, spread, recovery rate,
per-combination agreement).  :class:`CandidateScore` is that aggregation as
a standalone, *incrementally refinable* object: feed it more replicates and
every statistic updates — which is what an adaptive search allocator needs,
since it keeps adding replicate batches to a candidate until its confidence
interval separates from the frontier cut.

Two spread measures coexist deliberately:

* :attr:`std_fitness` is the **population** standard deviation
  (``numpy.std`` with ``ddof=0``) — the historical number reported by
  :class:`~repro.analysis.replicates.ReplicateStudy` summaries and payloads,
  pinned so existing outputs never shift.
* :meth:`sem_fitness` / :meth:`fitness_ci` use the **sample** variance
  (``ddof=1``): the standard error of the mean and the normal-approximation
  confidence interval around it.  An allocator comparing candidates needs a
  defensible interval for the *estimate of the mean*, which the population
  std is not.  With a single replicate the sample variance is undefined —
  both report ``inf`` (an unbounded interval), never a silent 0.0 that would
  let a one-replicate candidate masquerade as perfectly known.

The raw ``fitness`` is the paper's PFoBE — the stability of whatever
expression the replicate *recovered*, which is 100% for a cleanly broken
circuit stuck at CONST0.  A search ranking candidates against a target
function must not reward that, so the score also exposes the **design
fitness**: per replicate, ``fitness × (fraction of truth-table rows whose
recovered bit matches the expected bit)``.  A correct replicate keeps its
fitness; a dead AND circuit scores 100 × 3/4 = 75 and sinks below any
candidate that actually computes AND.  :meth:`design_ci` is the interval
the racing allocator separates candidates on.

Aggregation is order-independent *given the replicate slots*: values are
keyed by replicate index, and the statistics are always computed over the
slot-ordered value vector — so a score filled from results arriving in any
completion order equals the score filled serially, bit for bit.
"""

from __future__ import annotations

from statistics import NormalDist
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..core.analyzer import LogicAnalysisResult
from ..errors import AnalysisError
from ..logic.truthtable import TruthTable

__all__ = ["CandidateScore"]


def z_value(level: float) -> float:
    """Two-sided normal critical value for a confidence ``level`` in (0, 1)."""
    if not 0.0 < level < 1.0:
        raise AnalysisError(f"confidence level must be in (0, 1), got {level!r}")
    return NormalDist().inv_cdf(0.5 + level / 2.0)


class CandidateScore:
    """Aggregated replicate statistics for one candidate circuit, refinable.

    Parameters
    ----------
    expected:
        The truth table the candidate is supposed to implement; recovery and
        per-combination agreement are measured against it.

    Results are added with :meth:`add` (slot-keyed) or :meth:`extend`; every
    property reflects the replicates added so far.
    """

    def __init__(self, expected: TruthTable):
        self.expected = expected
        self._results: Dict[int, LogicAnalysisResult] = {}

    # -- construction ----------------------------------------------------------
    @classmethod
    def from_results(
        cls,
        expected: TruthTable,
        results: Iterable[LogicAnalysisResult],
    ) -> "CandidateScore":
        score = cls(expected)
        score.extend(results)
        return score

    def add(self, result: LogicAnalysisResult, slot: Optional[int] = None) -> None:
        """Record one replicate's analysis under replicate index ``slot``.

        ``slot`` defaults to the next free index.  Results may arrive in any
        order (parallel backends complete out of order); the statistics are
        computed over slots in ascending order, so the aggregate is identical
        however the same results were interleaved.
        """
        if slot is None:
            slot = len(self._results)
        slot = int(slot)
        if slot < 0:
            raise AnalysisError("replicate slot must be non-negative")
        if slot in self._results:
            raise AnalysisError(f"replicate slot {slot} already scored")
        self._results[slot] = result

    def extend(self, results: Iterable[LogicAnalysisResult]) -> None:
        for result in results:
            self.add(result)

    # -- basic statistics ------------------------------------------------------
    @property
    def results(self) -> List[LogicAnalysisResult]:
        """Recorded results in replicate-slot order."""
        return [self._results[slot] for slot in sorted(self._results)]

    @property
    def n_replicates(self) -> int:
        return len(self._results)

    @property
    def fitness_values(self) -> List[float]:
        return [r.fitness for r in self.results]

    def _require_results(self) -> List[float]:
        values = self.fitness_values
        if not values:
            raise AnalysisError("no replicates scored yet")
        return values

    @property
    def mean_fitness(self) -> float:
        return float(np.mean(self._require_results()))

    @property
    def std_fitness(self) -> float:
        """Population standard deviation (``ddof=0``) — the historical number."""
        return float(np.std(self._require_results()))

    @staticmethod
    def _sem_of(values: List[float]) -> float:
        if len(values) < 2:
            return float("inf")
        return float(np.std(values, ddof=1) / np.sqrt(len(values)))

    @staticmethod
    def _ci_of(values: List[float], level: float) -> Tuple[float, float]:
        sem = CandidateScore._sem_of(values)
        if not np.isfinite(sem):
            return (float("-inf"), float("inf"))
        mean = float(np.mean(values))
        half = z_value(level) * sem
        return (mean - half, mean + half)

    def sem_fitness(self) -> float:
        """Standard error of the mean, from the *sample* variance (``ddof=1``).

        ``inf`` for a single replicate: one observation carries no spread
        information, and an unbounded uncertainty keeps an allocator honest.
        """
        return self._sem_of(self._require_results())

    def fitness_ci(self, level: float = 0.95) -> Tuple[float, float]:
        """Normal-approximation confidence interval for the mean fitness.

        ``(-inf, inf)`` for a single replicate (see :meth:`sem_fitness`).
        """
        return self._ci_of(self._require_results(), level)

    # -- design fitness (correctness-weighted) ---------------------------------
    def _truth_agreement(self, result: LogicAnalysisResult) -> float:
        """Fraction of truth-table rows whose recovered bit matches the target."""
        expected = self.expected.outputs
        recovered = result.truth_table.outputs
        matches = sum(1 for e, r in zip(expected, recovered) if e == r)
        return matches / len(expected)

    @property
    def design_values(self) -> List[float]:
        """Per-replicate design fitness: ``fitness × truth-table agreement``.

        The search objective.  The raw fitness rewards *stability of the
        recovered expression* — a circuit stuck at CONST0 is perfectly stable
        — so it is weighted by how much of the target truth table the
        replicate actually recovered (see the module docstring).
        """
        return [r.fitness * self._truth_agreement(r) for r in self.results]

    @property
    def mean_design_fitness(self) -> float:
        values = self.design_values
        if not values:
            raise AnalysisError("no replicates scored yet")
        return float(np.mean(values))

    def design_sem(self) -> float:
        """Standard error of the mean design fitness (``inf`` at n=1)."""
        if not self._results:
            raise AnalysisError("no replicates scored yet")
        return self._sem_of(self.design_values)

    def design_ci(self, level: float = 0.95) -> Tuple[float, float]:
        """Confidence interval for the mean design fitness (the racing band)."""
        if not self._results:
            raise AnalysisError("no replicates scored yet")
        return self._ci_of(self.design_values, level)

    # -- logic-recovery statistics ---------------------------------------------
    @property
    def recovery_rate(self) -> float:
        """Fraction of replicates that recovered exactly the expected table."""
        results = self.results
        if not results:
            raise AnalysisError("no replicates scored yet")
        matches = sum(1 for r in results if r.truth_table.outputs == self.expected.outputs)
        return matches / len(results)

    def combination_agreement(self) -> Dict[str, float]:
        """Per-combination fraction of replicates agreeing with the expectation."""
        results = self.results
        if not results:
            raise AnalysisError("no replicates scored yet")
        labels = self.expected.combination_labels()
        agreement: Dict[str, float] = {}
        for index, label in enumerate(labels):
            expected_bit = self.expected.outputs[index]
            agreeing = sum(1 for r in results if r.truth_table.outputs[index] == expected_bit)
            agreement[label] = agreeing / len(results)
        return agreement

    def worst_combination(self) -> str:
        """The input combination most often recovered incorrectly."""
        agreement = self.combination_agreement()
        return min(agreement, key=agreement.get)

    def worst_combination_margin(self) -> float:
        """Agreement fraction of the worst input combination (robustness).

        1.0 means every replicate recovered every combination correctly; the
        lower the margin, the closer the candidate's weakest combination sits
        to flipping — the search frontier ranks on (fitness, this margin).
        """
        return min(self.combination_agreement().values())

    # -- serialization ---------------------------------------------------------
    def to_payload(self) -> Dict[str, object]:
        """JSON-ready statistics block (the frontier-entry shape)."""
        return {
            "n_replicates": self.n_replicates,
            "mean_fitness": self.mean_fitness,
            "std_fitness": self.std_fitness,
            "sem_fitness": self.sem_fitness(),
            "mean_design_fitness": self.mean_design_fitness,
            "recovery_rate": self.recovery_rate,
            "worst_combination": self.worst_combination(),
            "worst_combination_margin": self.worst_combination_margin(),
            "fitness_values": [float(v) for v in self.fitness_values],
            "design_values": [float(v) for v in self.design_values],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        if not self._results:
            return "CandidateScore(empty)"
        return (
            f"CandidateScore(n={self.n_replicates}, mean={self.mean_fitness:.2f}, "
            f"sem={self.sem_fitness():.2f})"
        )
