"""Higher-level studies built on the analyzer: sweeps, robustness, runtime."""

from .replicates import ReplicateStudy, run_replicate_study
from .robustness import RobustnessReport, assess_robustness
from .runtime import (
    RuntimeMeasurement,
    measure_analysis_runtime,
    synthetic_experiment_arrays,
)
from .sweep import ThresholdSweepEntry, threshold_sweep

__all__ = [
    "ThresholdSweepEntry",
    "threshold_sweep",
    "RobustnessReport",
    "assess_robustness",
    "ReplicateStudy",
    "run_replicate_study",
    "RuntimeMeasurement",
    "synthetic_experiment_arrays",
    "measure_analysis_runtime",
]
