"""Higher-level studies built on the analyzer: sweeps, robustness, runtime."""

from .replicates import ReplicateStudy, arun_replicate_study, run_replicate_study
from .robustness import RobustnessReport, assess_robustness
from .scoring import CandidateScore
from .runtime import (
    RuntimeMeasurement,
    ameasure_analysis_runtime,
    measure_analysis_runtime,
    synthetic_experiment_arrays,
)
from .sweep import ThresholdSweepEntry, athreshold_sweep, threshold_sweep

__all__ = [
    "ThresholdSweepEntry",
    "threshold_sweep",
    "athreshold_sweep",
    "RobustnessReport",
    "assess_robustness",
    "CandidateScore",
    "ReplicateStudy",
    "run_replicate_study",
    "arun_replicate_study",
    "RuntimeMeasurement",
    "synthetic_experiment_arrays",
    "measure_analysis_runtime",
    "ameasure_analysis_runtime",
]
