"""Runtime scaling of the analysis algorithm (Section IV timing claim).

The paper reports that "the proposed algorithm takes about 8.4 seconds to
analyze the logic of a complex genetic circuit with significantly large-sized
data", and contrasts it with the hours a single laboratory measurement takes.
This module measures the same quantity for this implementation: wall-clock
time of :class:`~repro.core.analyzer.LogicAnalyzer` as a function of the
number of logged samples and the number of inputs, on synthetic data logs
that mimic the structure of real experiments (so no simulation time is mixed
into the measurement).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.analyzer import LogicAnalyzer
from ..engine.spec import canonical_workers
from ..errors import AnalysisError
from ..logic.truthtable import TruthTable
from ..stochastic.rng import RandomState, fan_out_seeds, make_rng

__all__ = [
    "RuntimeMeasurement",
    "synthetic_experiment_arrays",
    "measure_analysis_runtime",
    "ameasure_analysis_runtime",
]


@dataclass
class RuntimeMeasurement:
    """One (problem size, analysis wall time) data point."""

    n_samples: int
    n_inputs: int
    seconds: float
    samples_per_second: float

    def summary(self) -> str:
        return (
            f"{self.n_inputs}-input, {self.n_samples:>9,d} samples: "
            f"{self.seconds * 1000:8.1f} ms ({self.samples_per_second:,.0f} samples/s)"
        )


def synthetic_experiment_arrays(
    n_samples: int,
    n_inputs: int,
    truth_table: Optional[TruthTable] = None,
    threshold: float = 15.0,
    high_level: float = 40.0,
    noise_std: float = 4.0,
    glitch_fraction: float = 0.02,
    rng: RandomState = None,
) -> Tuple[np.ndarray, np.ndarray, List[str]]:
    """Generate a synthetic (inputs, output, names) experiment of a given size.

    The generated data walks through the input combinations in blocks (like a
    real protocol), produces the output dictated by ``truth_table`` (a random
    table when omitted) with Gaussian amplitude noise, and corrupts a small
    fraction of samples near combination boundaries to emulate propagation
    transients.  The point is not biological realism — it is a workload whose
    size can be scaled freely to measure analyzer throughput.
    """
    if n_samples < 2**n_inputs:
        raise AnalysisError("n_samples must cover at least one sample per combination")
    generator = make_rng(rng)
    input_names = [f"in{i + 1}" for i in range(n_inputs)]
    if truth_table is None:
        outputs = generator.integers(0, 2, size=2**n_inputs)
        if outputs.max() == 0:
            outputs[-1] = 1
        truth_table = TruthTable(input_names, outputs.tolist())

    n_combinations = 2**n_inputs
    block = n_samples // n_combinations
    indices = np.repeat(np.arange(n_combinations), block)
    if indices.shape[0] < n_samples:
        indices = np.concatenate(
            [indices, np.full(n_samples - indices.shape[0], n_combinations - 1)],
        )
    bits = ((indices[:, None] >> np.arange(n_inputs - 1, -1, -1)) & 1).astype(float)
    input_matrix = bits * high_level

    ideal = np.array([truth_table.outputs[i] for i in indices], dtype=float)
    output = ideal * high_level + generator.normal(0.0, noise_std, size=n_samples)
    output = np.clip(output, 0.0, None)

    # Emulate propagation transients: right after each block boundary the
    # output still carries the previous block's value.
    glitch_len = max(1, int(block * glitch_fraction))
    for boundary in range(block, n_samples, block):
        previous = output[boundary - 1]
        end = min(boundary + glitch_len, n_samples)
        output[boundary:end] = previous
    return input_matrix, output, input_names


def _measure_one_size(payload) -> RuntimeMeasurement:
    """Measure a single size (module-level so executors can dispatch it)."""
    n_samples, n_inputs, threshold, fov_ud, repeats, seed = payload
    return measure_analysis_runtime(
        [n_samples],
        n_inputs=n_inputs,
        threshold=threshold,
        fov_ud=fov_ud,
        repeats=repeats,
        rng=make_rng(seed),
    )[0]


def measure_analysis_runtime(
    sample_sizes: Sequence[int],
    n_inputs: int = 3,
    threshold: float = 15.0,
    fov_ud: float = 0.25,
    repeats: int = 3,
    rng: RandomState = None,
    workers: Optional[int] = None,
    progress=None,
    executor=None,
    *,
    jobs: Optional[int] = None,
) -> List[RuntimeMeasurement]:
    """Time the analyzer over a range of trace sizes.

    Each size is measured ``repeats`` times on freshly generated data and the
    *minimum* wall time is reported (the usual way to suppress scheduler
    noise in micro-benchmarks).  With ``workers=N`` the sizes are distributed
    over the ensemble engine's process-pool executor (one independent seed per
    size); wall-clock timings taken under contention are noisier, so keep
    ``workers=1`` when absolute numbers matter.  An explicit ``executor``
    (e.g. a :class:`~repro.engine.DistributedEnsembleExecutor` behind the
    CLI's ``--dispatch``) overrides ``workers`` and stays open for the
    caller.  ``jobs=`` is a deprecated alias for ``workers=``.  ``progress``
    is called after each measured size with ``(done, total, size_index)``.
    """
    workers = canonical_workers(workers, jobs, default=1)
    if repeats < 1:
        raise AnalysisError("repeats must be at least 1")
    if executor is not None or workers > 1:
        from ..engine.executors import get_executor

        seeds = fan_out_seeds(rng, len(sample_sizes))
        payloads = [
            (int(size), n_inputs, threshold, fov_ud, repeats, seed)
            for size, seed in zip(sample_sizes, seeds)
        ]
        if executor is not None:
            return executor.map(_measure_one_size, payloads, progress=progress)
        with get_executor(workers) as pool:
            return pool.map(_measure_one_size, payloads, progress=progress)
    generator = make_rng(rng)
    analyzer = LogicAnalyzer(threshold=threshold, fov_ud=fov_ud)
    measurements: List[RuntimeMeasurement] = []
    for n_samples in sample_sizes:
        best = float("inf")
        for _ in range(repeats):
            inputs, output, names = synthetic_experiment_arrays(
                int(n_samples),
                n_inputs,
                threshold=threshold,
                rng=generator,
            )
            started = time.perf_counter()
            analyzer.analyze_arrays(inputs, output, names)
            best = min(best, time.perf_counter() - started)
        measurements.append(
            RuntimeMeasurement(
                n_samples=int(n_samples),
                n_inputs=n_inputs,
                seconds=best,
                samples_per_second=(int(n_samples) / best) if best > 0 else float("inf"),
            ),
        )
        if progress is not None:
            progress(len(measurements), len(sample_sizes), len(measurements) - 1)
    return measurements


async def ameasure_analysis_runtime(*args, **kwargs) -> List[RuntimeMeasurement]:
    """Async entry point: :func:`measure_analysis_runtime` off the event loop.

    Runs the (blocking) measurement sweep on a worker thread via
    :func:`asyncio.to_thread`.  Accepts exactly the arguments of
    :func:`measure_analysis_runtime`; note that timings taken while an event
    loop juggles other work are noisier still, so treat the absolute numbers
    accordingly.
    """
    return await asyncio.to_thread(measure_analysis_runtime, *args, **kwargs)
