"""Replicate studies: how repeatable is the recovered logic?

The paper interprets the percentage fitness as an indication of "how likely
it is that the circuit will actually work after implementation in the
laboratory".  A single stochastic run gives one fitness number; a replicate
study runs the same experiment under independent random seeds and reports

* how often the correct Boolean expression is recovered (the recovery rate),
* the distribution of the fitness score, and
* the per-combination agreement across replicates,

which is the statistically honest version of that reliability argument and a
natural extension the paper's conclusion points towards.

The canonical request form is a frozen :class:`~repro.engine.StudySpec` —
one serializable object naming the circuit, protocol, seed, analyzer
configuration and execution knobs — consumed identically by
:func:`run_replicate_study`, :func:`arun_replicate_study`, the CLI
(``genlogic verify --spec``) and the HTTP service (:mod:`repro.service`).
The legacy keyword form (circuit object plus scattered kwargs) is kept as a
thin shim that constructs a spec.
"""

from __future__ import annotations

import asyncio
import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from ..core.analyzer import LogicAnalysisResult, LogicAnalyzer
from ..engine.api import replicate_jobs, run_ensemble
from ..engine.cache import model_blob, worker_model_from_blob
from ..engine.executors import get_executor
from ..engine.jobs import EnsembleStats
from ..engine.spec import StudySpec, canonical_workers
from ..errors import AnalysisError, EngineError
from ..gates.circuits import GeneticCircuit
from ..logic.truthtable import TruthTable
from ..stochastic.rng import RandomState
from ..vlab.experiment import LogicExperiment
from .scoring import CandidateScore

__all__ = ["ReplicateStudy", "run_replicate_study", "arun_replicate_study"]


@dataclass
class ReplicateStudy:
    """Aggregated outcome of repeated experiments on one circuit."""

    circuit_name: str
    expected: TruthTable
    results: List[LogicAnalysisResult]
    #: Execution statistics of the simulation ensemble (None for studies
    #: assembled from pre-existing results).
    stats: Optional[EnsembleStats] = None
    #: The canonical spec this study executed (None for studies assembled
    #: from pre-existing results).
    spec: Optional[StudySpec] = None

    def __post_init__(self) -> None:
        if not self.results:
            raise AnalysisError("a replicate study needs at least one result")

    @property
    def n_replicates(self) -> int:
        return len(self.results)

    def score(self) -> CandidateScore:
        """The study's aggregation as a reusable :class:`CandidateScore`.

        Every statistic below delegates here; the score object itself is what
        the search layer keeps per candidate, because it can be *refined* by
        adding replicates instead of recomputing a study from scratch.
        """
        return CandidateScore.from_results(self.expected, self.results)

    @property
    def recovery_rate(self) -> float:
        """Fraction of replicates that recovered exactly the expected table."""
        return self.score().recovery_rate

    @property
    def fitness_values(self) -> List[float]:
        return [r.fitness for r in self.results]

    @property
    def mean_fitness(self) -> float:
        return self.score().mean_fitness

    @property
    def std_fitness(self) -> float:
        """Population standard deviation (``ddof=0``), the historical number.

        Reported in summaries and payloads since the first replicate studies;
        pinned to ``numpy.std`` population semantics.  For an interval around
        the mean use :meth:`sem_fitness` / :meth:`fitness_ci`, which use the
        sample variance (``ddof=1``).
        """
        return self.score().std_fitness

    def sem_fitness(self) -> float:
        """Standard error of the mean fitness (sample variance, ``ddof=1``).

        ``inf`` for a single replicate — see
        :meth:`repro.analysis.scoring.CandidateScore.sem_fitness`.
        """
        return self.score().sem_fitness()

    def fitness_ci(self, level: float = 0.95) -> tuple:
        """Normal-approximation CI for the mean fitness (``(-inf, inf)`` at n=1)."""
        return self.score().fitness_ci(level)

    def combination_agreement(self) -> Dict[str, float]:
        """Per-combination fraction of replicates agreeing with the expectation."""
        return self.score().combination_agreement()

    def worst_combination(self) -> str:
        """The input combination most often recovered incorrectly."""
        return self.score().worst_combination()

    def summary(self) -> str:
        return (
            f"{self.circuit_name}: {self.n_replicates} replicates, recovery rate "
            f"{self.recovery_rate * 100:.0f}%, fitness {self.mean_fitness:.2f}% ± "
            f"{self.std_fitness:.2f}"
        )

    def to_payload(self) -> Dict[str, object]:
        """A JSON-serializable summary of the study (the service result shape).

        ``fitness_values`` and ``recovered_tables`` carry the full
        per-replicate outcome, so the result fields (everything except the
        ``engine`` timing block) compare equal exactly when the underlying
        studies were bit-identical — the property the service's
        content-addressed cache (and its tests) rely on.
        """
        payload: Dict[str, object] = {
            "circuit": self.circuit_name,
            "expected": self.expected.to_hex(),
            "n_replicates": self.n_replicates,
            "recovery_rate": self.recovery_rate,
            "mean_fitness": self.mean_fitness,
            "std_fitness": self.std_fitness,
            "fitness_values": [float(v) for v in self.fitness_values],
            "recovered_tables": [r.truth_table.to_hex() for r in self.results],
            "combination_agreement": self.combination_agreement(),
            "worst_combination": self.worst_combination(),
        }
        if self.stats is not None:
            payload["engine"] = {
                "executor": self.stats.executor,
                "workers": self.stats.workers,
                "wall_seconds": self.stats.wall_seconds,
                "runs_per_second": self.stats.runs_per_second,
                "cache_hits": self.stats.cache_hits,
                "cache_misses": self.stats.cache_misses,
            }
        if self.spec is not None:
            payload["spec"] = self.spec.to_dict()
        return payload


def _analyze_replicate_payload(payload) -> LogicAnalysisResult:
    """Analyze one replicate's trajectory (module-level, so executors can
    dispatch it to worker processes through the engine's generic ``map``).

    The study context (experiment, analyzer settings, expected table) is
    shared by every replicate, so it travels as one pre-pickled blob keyed on
    its content fingerprint — each worker deserializes it once per study (via
    the same blob memo the simulation payloads use), and the per-payload
    cost reduces to the job shell and its trajectory.
    """
    fingerprint, bundle, job, trajectory = payload
    experiment, threshold, fov_ud, expected = worker_model_from_blob(fingerprint, bundle)
    analyzer = LogicAnalyzer(threshold=threshold, fov_ud=fov_ud)
    data = experiment.datalog_from(job, trajectory)
    return analyzer.analyze(data, expected=expected)


_STUDY_FIELD_DEFAULTS = {
    "n_replicates": 5,
    "threshold": 15.0,
    "fov_ud": 0.25,
    "hold_time": 200.0,
    "repeats": 1,
    "simulator": "ssa",
}


def _as_study_spec(
    circuit: Union[StudySpec, GeneticCircuit, str],
    *,
    n_replicates: Optional[int],
    threshold: Optional[float],
    fov_ud: Optional[float],
    hold_time: Optional[float],
    repeats: Optional[int],
    simulator: Optional[str],
    rng: RandomState,
    workers: Optional[int],
    analysis_jobs: Optional[int],
    batch_size: Optional[int],
) -> StudySpec:
    """The spec a (possibly legacy-keyword) call describes.

    Given a ready :class:`StudySpec`, study-defining keywords may not also be
    set (a spec *is* the study; silently merging the two would make one of
    them lie), while the execution knobs — ``workers``, ``batch_size``,
    ``analysis_jobs`` — may still be overridden at the call site, since they
    never change the result.  Given a circuit, the keywords are folded into a
    fresh spec with the documented defaults.
    """
    study_fields = {
        "n_replicates": n_replicates,
        "threshold": threshold,
        "fov_ud": fov_ud,
        "hold_time": hold_time,
        "repeats": repeats,
        "simulator": simulator,
    }
    if isinstance(circuit, StudySpec):
        conflicting = sorted(name for name, value in study_fields.items() if value is not None)
        if rng is not None:
            conflicting.append("rng")
        if conflicting:
            raise AnalysisError(
                f"got both a StudySpec and study-defining keyword(s) {conflicting}; "
                "build the spec with those values (spec.replace(...)) instead",
            )
        knobs = {
            name: int(value)
            for name, value in (
                ("workers", workers),
                ("analysis_jobs", analysis_jobs),
                ("batch_size", batch_size),
            )
            if value is not None and int(value) != getattr(circuit, name)
        }
        return circuit.replace(**knobs) if knobs else circuit
    fields = {
        name: value if value is not None else _STUDY_FIELD_DEFAULTS[name]
        for name, value in study_fields.items()
    }
    for name, value in (
        ("workers", workers),
        ("analysis_jobs", analysis_jobs),
        ("batch_size", batch_size),
    ):
        if value is not None:
            fields[name] = int(value)
    attach_rng = None
    if rng is None or isinstance(rng, (int, np.integer)):
        fields["seed"] = None if rng is None else int(rng)
    else:
        # A live Generator / SeedSequence cannot live in a frozen, serializable
        # spec; carry it alongside for execution (such a spec has no cache key).
        attach_rng = rng
    try:
        spec = StudySpec.for_circuit(circuit, **fields)
    except EngineError as error:
        # Legacy keyword callers predate StudySpec and expect AnalysisError
        # for invalid study parameters.
        raise AnalysisError(str(error)) from None
    if attach_rng is not None:
        object.__setattr__(spec, "_rng", attach_rng)
    return spec


def run_replicate_study(
    circuit: Union[StudySpec, GeneticCircuit, str],
    n_replicates: Optional[int] = None,
    threshold: Optional[float] = None,
    fov_ud: Optional[float] = None,
    hold_time: Optional[float] = None,
    repeats: Optional[int] = None,
    simulator: Optional[str] = None,
    rng: RandomState = None,
    workers: Optional[int] = None,
    executor=None,
    progress=None,
    analysis_jobs: Optional[int] = None,
    batch_size: Optional[int] = None,
    *,
    jobs: Optional[int] = None,
) -> ReplicateStudy:
    """Run ``n_replicates`` independent experiments and aggregate the analyses.

    The canonical call passes one :class:`~repro.engine.StudySpec` (or a
    circuit name) — ``run_replicate_study(StudySpec(circuit="0x0B",
    n_replicates=20, seed=7, workers=4))`` — and the returned study records
    that spec at ``.spec``.  The legacy form (a circuit object plus keywords:
    ``n_replicates=5``, ``threshold=15.0``, ``fov_ud=0.25``,
    ``hold_time=200.0``, ``repeats=1``, ``simulator="ssa"``) is a shim that
    constructs the same spec, so both forms execute identically, bit for
    bit.  ``workers`` is the canonical concurrency keyword (``jobs=`` is a
    deprecated alias that warns).

    The replicate simulations are submitted as one batch to the ensemble
    engine: ``workers=N`` runs them on ``N`` worker processes, with
    bit-identical results to the serial path because the per-replicate seeds
    are fanned out from the spec's seed before dispatch.  Execution streams:
    each trajectory is analyzed (datalog statistics, logic recovery) the
    moment its run completes and then discarded, so peak memory holds a
    bounded window of trajectories rather than all ``n_replicates`` of them.
    Pass an opened ``executor`` to reuse one live worker pool across several
    studies (it overrides ``workers``).

    ``analysis_jobs=N > 1`` fans the *analysis* out to worker processes too,
    through the engine's generic ``map`` path: the trajectories are
    materialized first and every replicate's logic recovery runs in parallel
    (on the simulation executor when one is shared, else on an ephemeral
    pool), instead of serializing in the parent.  Worth it when analysis
    dominates (long hold times, many samples); it trades the streamed path's
    bounded memory for parallel analysis, and the recovered results are
    identical either way.

    ``batch_size=B`` dispatches the replicates in lockstep batches of up to B
    per worker call — same trajectories, same analyses, less dispatch and
    result-transport overhead per replicate.
    """
    workers = canonical_workers(workers, jobs, default=1) if (
        workers is not None or jobs is not None
    ) else None
    spec = _as_study_spec(
        circuit,
        n_replicates=n_replicates,
        threshold=threshold,
        fov_ud=fov_ud,
        hold_time=hold_time,
        repeats=repeats,
        simulator=simulator,
        rng=rng,
        workers=workers,
        analysis_jobs=analysis_jobs,
        batch_size=batch_size,
    )
    resolved = spec.resolve_circuit()
    seed = spec.__dict__.get("_rng", spec.seed)
    experiment = LogicExperiment.for_spec(spec)
    template = experiment.job(
        hold_time=spec.hold_time,
        repeats=spec.repeats,
        overrides=dict(spec.overrides) if spec.overrides else None,
    )
    batch = replicate_jobs(template, spec.n_replicates, seed=seed)

    if spec.analysis_jobs > 1:
        owns_executor = executor is None
        runner = (
            executor
            if executor is not None
            else get_executor(max(spec.workers, spec.analysis_jobs))
        )
        try:
            ensemble = run_ensemble(
                batch, executor=runner, progress=progress, batch_size=spec.batch_size
            )
            bundle, fingerprint = model_blob(
                (experiment, spec.threshold, spec.fov_ud, resolved.expected_table),
            )
            payloads = [
                # The job ships without its model: the analysis only needs the
                # schedule and metadata, and the heavy model graph is already
                # inside the shared bundle's experiment.
                (fingerprint, bundle, dataclasses.replace(job, model=None), trajectory)
                for job, trajectory in ensemble
            ]
            results = runner.map(_analyze_replicate_payload, payloads)
        finally:
            if owns_executor:
                runner.close()
        return ReplicateStudy(
            circuit_name=resolved.name,
            expected=resolved.expected_table,
            results=results,
            stats=ensemble.stats,
            spec=spec,
        )

    analyzer = LogicAnalyzer(threshold=spec.threshold, fov_ud=spec.fov_ud)

    def _analyze(index, job, trajectory) -> LogicAnalysisResult:
        data = experiment.datalog_from(job, trajectory)
        return analyzer.analyze(data, expected=resolved.expected_table)

    ensemble = run_ensemble(
        batch,
        workers=spec.workers,
        executor=executor,
        progress=progress,
        reduce=_analyze,
        batch_size=spec.batch_size,
    )
    results: List[LogicAnalysisResult] = list(ensemble.reduced)
    return ReplicateStudy(
        circuit_name=resolved.name,
        expected=resolved.expected_table,
        results=results,
        stats=ensemble.stats,
        spec=spec,
    )


async def arun_replicate_study(
    circuit: Union[StudySpec, GeneticCircuit, str],
    n_replicates: Optional[int] = None,
    threshold: Optional[float] = None,
    fov_ud: Optional[float] = None,
    hold_time: Optional[float] = None,
    repeats: Optional[int] = None,
    simulator: Optional[str] = None,
    rng: RandomState = None,
    workers: Optional[int] = None,
    executor=None,
    progress=None,
    analysis_jobs: Optional[int] = None,
    batch_size: Optional[int] = None,
    *,
    jobs: Optional[int] = None,
) -> ReplicateStudy:
    """Async entry point: :func:`run_replicate_study` off the event loop.

    Runs the (blocking) study on a worker thread via
    :func:`asyncio.to_thread`, so a caller inside an event loop — e.g. a web
    handler running one study per request — never stalls its loop while the
    simulations execute.  Mirrors the signature of
    :func:`run_replicate_study` exactly (same canonical
    :class:`~repro.engine.StudySpec` form, same legacy keyword shim, same
    deprecated ``jobs=`` alias); pass ``executor=`` (e.g. the shared pool of
    :func:`repro.engine.gather_studies` or the HTTP service's warm executor)
    to multiplex many concurrent studies over one worker pool.
    """
    return await asyncio.to_thread(
        run_replicate_study,
        circuit,
        n_replicates=n_replicates,
        threshold=threshold,
        fov_ud=fov_ud,
        hold_time=hold_time,
        repeats=repeats,
        simulator=simulator,
        rng=rng,
        workers=workers,
        executor=executor,
        progress=progress,
        analysis_jobs=analysis_jobs,
        batch_size=batch_size,
        jobs=jobs,
    )
