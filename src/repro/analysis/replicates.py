"""Replicate studies: how repeatable is the recovered logic?

The paper interprets the percentage fitness as an indication of "how likely
it is that the circuit will actually work after implementation in the
laboratory".  A single stochastic run gives one fitness number; a replicate
study runs the same experiment under independent random seeds and reports

* how often the correct Boolean expression is recovered (the recovery rate),
* the distribution of the fitness score, and
* the per-combination agreement across replicates,

which is the statistically honest version of that reliability argument and a
natural extension the paper's conclusion points towards.
"""

from __future__ import annotations

import asyncio
import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.analyzer import LogicAnalysisResult, LogicAnalyzer
from ..engine.api import replicate_jobs, run_ensemble
from ..engine.cache import model_blob, worker_model_from_blob
from ..engine.executors import get_executor
from ..engine.jobs import EnsembleStats
from ..errors import AnalysisError
from ..gates.circuits import GeneticCircuit
from ..logic.truthtable import TruthTable
from ..stochastic.rng import RandomState
from ..vlab.experiment import LogicExperiment

__all__ = ["ReplicateStudy", "run_replicate_study", "arun_replicate_study"]


@dataclass
class ReplicateStudy:
    """Aggregated outcome of repeated experiments on one circuit."""

    circuit_name: str
    expected: TruthTable
    results: List[LogicAnalysisResult]
    #: Execution statistics of the simulation ensemble (None for studies
    #: assembled from pre-existing results).
    stats: Optional[EnsembleStats] = None

    def __post_init__(self) -> None:
        if not self.results:
            raise AnalysisError("a replicate study needs at least one result")

    @property
    def n_replicates(self) -> int:
        return len(self.results)

    @property
    def recovery_rate(self) -> float:
        """Fraction of replicates that recovered exactly the expected table."""
        matches = sum(1 for r in self.results if r.truth_table.outputs == self.expected.outputs)
        return matches / self.n_replicates

    @property
    def fitness_values(self) -> List[float]:
        return [r.fitness for r in self.results]

    @property
    def mean_fitness(self) -> float:
        return float(np.mean(self.fitness_values))

    @property
    def std_fitness(self) -> float:
        return float(np.std(self.fitness_values))

    def combination_agreement(self) -> Dict[str, float]:
        """Per-combination fraction of replicates agreeing with the expectation."""
        labels = self.expected.combination_labels()
        agreement: Dict[str, float] = {}
        for index, label in enumerate(labels):
            expected_bit = self.expected.outputs[index]
            agreeing = sum(1 for r in self.results if r.truth_table.outputs[index] == expected_bit)
            agreement[label] = agreeing / self.n_replicates
        return agreement

    def worst_combination(self) -> str:
        """The input combination most often recovered incorrectly."""
        agreement = self.combination_agreement()
        return min(agreement, key=agreement.get)

    def summary(self) -> str:
        return (
            f"{self.circuit_name}: {self.n_replicates} replicates, recovery rate "
            f"{self.recovery_rate * 100:.0f}%, fitness {self.mean_fitness:.2f}% ± "
            f"{self.std_fitness:.2f}"
        )


def _analyze_replicate_payload(payload) -> LogicAnalysisResult:
    """Analyze one replicate's trajectory (module-level, so executors can
    dispatch it to worker processes through the engine's generic ``map``).

    The study context (experiment, analyzer settings, expected table) is
    shared by every replicate, so it travels as one pre-pickled blob keyed on
    its content fingerprint — each worker deserializes it once per study (via
    the same blob memo the simulation payloads use), and the per-payload
    cost reduces to the job shell and its trajectory.
    """
    fingerprint, bundle, job, trajectory = payload
    experiment, threshold, fov_ud, expected = worker_model_from_blob(fingerprint, bundle)
    analyzer = LogicAnalyzer(threshold=threshold, fov_ud=fov_ud)
    data = experiment.datalog_from(job, trajectory)
    return analyzer.analyze(data, expected=expected)


def run_replicate_study(
    circuit: GeneticCircuit,
    n_replicates: int = 5,
    threshold: float = 15.0,
    fov_ud: float = 0.25,
    hold_time: float = 200.0,
    repeats: int = 1,
    simulator: str = "ssa",
    rng: RandomState = None,
    jobs: int = 1,
    executor=None,
    progress=None,
    analysis_jobs: int = 1,
    batch_size: int = 1,
) -> ReplicateStudy:
    """Run ``n_replicates`` independent experiments and aggregate the analyses.

    The replicate simulations are submitted as one batch to the ensemble
    engine: ``jobs=N`` runs them on ``N`` worker processes, with bit-identical
    results to the serial path because the per-replicate seeds are fanned out
    from ``rng`` before dispatch.  Execution streams: each trajectory is
    analyzed (datalog statistics, logic recovery) the moment its run
    completes and then discarded, so peak memory holds a bounded window of
    trajectories rather than all ``n_replicates`` of them.  Pass an opened
    ``executor`` to reuse one live worker pool across several studies.

    ``analysis_jobs=N > 1`` fans the *analysis* out to worker processes too,
    through the engine's generic ``map`` path: the trajectories are
    materialized first and every replicate's logic recovery runs in parallel
    (on the simulation executor when one is shared, else on an ephemeral
    pool), instead of serializing in the parent.  Worth it when analysis
    dominates (long hold times, many samples); it trades the streamed path's
    bounded memory for parallel analysis, and the recovered results are
    identical either way.

    ``batch_size=B`` dispatches the replicates in lockstep batches of up to B
    per worker call — same trajectories, same analyses, less dispatch and
    result-transport overhead per replicate.
    """
    if n_replicates < 1:
        raise AnalysisError("n_replicates must be at least 1")
    experiment = LogicExperiment.for_circuit(circuit, simulator=simulator)
    template = experiment.job(hold_time=hold_time, repeats=repeats)
    batch = replicate_jobs(template, n_replicates, seed=rng)

    if analysis_jobs > 1:
        owns_executor = executor is None
        runner = executor if executor is not None else get_executor(max(jobs, analysis_jobs))
        try:
            ensemble = run_ensemble(
                batch, executor=runner, progress=progress, batch_size=batch_size
            )
            bundle, fingerprint = model_blob(
                (experiment, float(threshold), float(fov_ud), circuit.expected_table),
            )
            payloads = [
                # The job ships without its model: the analysis only needs the
                # schedule and metadata, and the heavy model graph is already
                # inside the shared bundle's experiment.
                (fingerprint, bundle, dataclasses.replace(job, model=None), trajectory)
                for job, trajectory in ensemble
            ]
            results = runner.map(_analyze_replicate_payload, payloads)
        finally:
            if owns_executor:
                runner.close()
        return ReplicateStudy(
            circuit_name=circuit.name,
            expected=circuit.expected_table,
            results=results,
            stats=ensemble.stats,
        )

    analyzer = LogicAnalyzer(threshold=threshold, fov_ud=fov_ud)

    def _analyze(index, job, trajectory) -> LogicAnalysisResult:
        data = experiment.datalog_from(job, trajectory)
        return analyzer.analyze(data, expected=circuit.expected_table)

    ensemble = run_ensemble(
        batch,
        workers=jobs,
        executor=executor,
        progress=progress,
        reduce=_analyze,
        batch_size=batch_size,
    )
    results: List[LogicAnalysisResult] = list(ensemble.reduced)
    return ReplicateStudy(
        circuit_name=circuit.name,
        expected=circuit.expected_table,
        results=results,
        stats=ensemble.stats,
    )


async def arun_replicate_study(*args, **kwargs) -> ReplicateStudy:
    """Async entry point: :func:`run_replicate_study` off the event loop.

    Runs the (blocking) study on a worker thread via
    :func:`asyncio.to_thread`, so a caller inside an event loop — e.g. a web
    handler running one study per request — never stalls its loop while the
    simulations execute.  Accepts exactly the arguments of
    :func:`run_replicate_study`; pass ``executor=`` (e.g. the shared pool of
    :func:`repro.engine.gather_studies`) to multiplex many concurrent
    studies over one warm worker pool.
    """
    return await asyncio.to_thread(run_replicate_study, *args, **kwargs)
