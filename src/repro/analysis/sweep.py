"""Threshold sweeps (the paper's Figure 5 experiment).

The paper re-runs circuit ``0x0B`` with the threshold value of the input
concentrations set "to very low (3 molecules) and very high (40 molecules)"
and observes that the recovered logic changes: too-weak inputs cannot trigger
the circuit (it degenerates towards a different function), while too-strong
inputs leave the input and output levels indistinguishable, producing heavy
output oscillation and wrong states.

:func:`threshold_sweep` reproduces that protocol: for each threshold value
the inputs are clamped at that level (as D-VASim does when the user adopts
the analysed threshold) and the analog-to-digital conversion uses the same
level, then the standard analysis runs and is verified against the circuit's
intended behaviour.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.analyzer import LogicAnalysisResult, LogicAnalyzer
from ..engine.api import run_ensemble
from ..engine.spec import canonical_workers
from ..errors import AnalysisError
from ..gates.circuits import GeneticCircuit
from ..logic.compare import LogicComparison
from ..stochastic.rng import RandomState, fan_out_seeds
from ..vlab.experiment import LogicExperiment

__all__ = ["ThresholdSweepEntry", "threshold_sweep", "athreshold_sweep"]


@dataclass
class ThresholdSweepEntry:
    """Outcome of analysing one circuit at one threshold / input level."""

    threshold: float
    input_high: float
    result: LogicAnalysisResult
    comparison: LogicComparison

    @property
    def wrong_states(self) -> List[str]:
        """Input combinations whose recovered output disagrees with the intent."""
        return self.comparison.wrong_states

    @property
    def n_wrong_states(self) -> int:
        return len(self.comparison.wrong_states)

    @property
    def matches(self) -> bool:
        return self.comparison.matches

    @property
    def total_variation(self) -> int:
        """Total output oscillation count across all input combinations."""
        return sum(c.variation_count for c in self.result.combinations)

    def summary(self) -> str:
        verdict = "correct" if self.matches else f"{self.n_wrong_states} wrong state(s)"
        return (
            f"threshold {self.threshold:g}: recovered {self.result.truth_table.to_hex()} "
            f"({verdict}), fitness {self.result.fitness:.2f}%, "
            f"total variation {self.total_variation}"
        )


def threshold_sweep(
    circuit: GeneticCircuit,
    thresholds: Sequence[float],
    hold_time: float = 250.0,
    repeats: int = 1,
    simulator: str = "ssa",
    rng: RandomState = None,
    fov_ud: float = 0.25,
    input_high_equals_threshold: bool = True,
    input_high: Optional[float] = None,
    workers: Optional[int] = None,
    executor=None,
    progress=None,
    *,
    jobs: Optional[int] = None,
) -> List[ThresholdSweepEntry]:
    """Analyse ``circuit`` once per threshold value.

    With ``input_high_equals_threshold`` (the default, matching the paper's
    protocol) the input species are clamped to the threshold value itself at
    digital 1; otherwise they are clamped to ``input_high`` (or the circuit's
    library level) regardless of the analysis threshold.

    All per-threshold simulations are submitted as one batch to the ensemble
    engine (compiling the circuit model once for the whole sweep);
    ``workers=N`` runs them on ``N`` worker processes with results identical
    to the serial path (``jobs=`` is a deprecated alias).  Each run is
    analyzed as it completes and its trajectory discarded, so the sweep never
    materializes more than the executor's in-flight window.  An opened
    ``executor`` is reused (and left open) so several sweeps can share one
    warm worker pool.
    """
    workers = canonical_workers(workers, jobs, default=1)
    thresholds = list(thresholds)
    if not thresholds:
        raise AnalysisError("threshold_sweep needs at least one threshold value")
    experiments: List[LogicExperiment] = []
    sweep_jobs = []
    seeds = fan_out_seeds(rng, len(thresholds))
    for threshold, seed in zip(thresholds, seeds):
        if threshold <= 0:
            raise AnalysisError("threshold values must be positive")
        if input_high_equals_threshold:
            level = float(threshold)
        elif input_high is not None:
            level = float(input_high)
        else:
            level = max(v["high"] for v in circuit.input_levels().values())
        experiment = LogicExperiment.for_circuit(
            circuit,
            simulator=simulator,
            input_high=level,
        )
        experiments.append(experiment)
        sweep_jobs.append(
            experiment.job(hold_time=hold_time, repeats=repeats, seed=seed),
        )

    def _entry(index, job, trajectory) -> ThresholdSweepEntry:
        experiment = experiments[index]
        data = experiment.datalog_from(job, trajectory)
        analyzer = LogicAnalyzer(threshold=float(thresholds[index]), fov_ud=fov_ud)
        result = analyzer.analyze(data)
        comparison = result.verify(circuit.expected_table)
        return ThresholdSweepEntry(
            threshold=float(thresholds[index]),
            input_high=experiment.input_high,
            result=result,
            comparison=comparison,
        )

    ensemble = run_ensemble(
        sweep_jobs,
        workers=workers,
        executor=executor,
        progress=progress,
        reduce=_entry,
    )
    return list(ensemble.reduced)


async def athreshold_sweep(*args, **kwargs) -> List[ThresholdSweepEntry]:
    """Async entry point: :func:`threshold_sweep` off the event loop.

    Runs the (blocking) sweep on a worker thread via
    :func:`asyncio.to_thread`, so callers inside an event loop never stall
    it.  Accepts exactly the arguments of :func:`threshold_sweep`; share a
    warm pool across concurrent sweeps with ``executor=`` (see
    :func:`repro.engine.gather_studies`).
    """
    return await asyncio.to_thread(threshold_sweep, *args, **kwargs)
