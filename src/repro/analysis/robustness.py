"""Robustness of a circuit's logic across operating thresholds.

The paper concludes that logic analysis "may help users to analyze the
circuit's behavior and robustness for different parameter sets before
creating them in the laboratory".  This module turns that idea into a small
report: sweep the threshold over a range, record where the recovered logic
stays correct, and summarise the usable operating window around the nominal
threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..engine.spec import canonical_workers
from ..errors import AnalysisError
from ..gates.circuits import GeneticCircuit
from ..stochastic.rng import RandomState
from .sweep import ThresholdSweepEntry, threshold_sweep

__all__ = ["RobustnessReport", "assess_robustness"]


@dataclass
class RobustnessReport:
    """Which threshold values preserve the circuit's intended logic."""

    circuit_name: str
    nominal_threshold: float
    entries: List[ThresholdSweepEntry]

    @property
    def correct_thresholds(self) -> List[float]:
        return [e.threshold for e in self.entries if e.matches]

    @property
    def incorrect_thresholds(self) -> List[float]:
        return [e.threshold for e in self.entries if not e.matches]

    @property
    def nominal_is_correct(self) -> bool:
        """True when the logic is correct at the threshold closest to nominal."""
        if not self.entries:
            return False
        closest = min(self.entries, key=lambda e: abs(e.threshold - self.nominal_threshold))
        return closest.matches

    def operating_window(self) -> Optional[Tuple[float, float]]:
        """The contiguous threshold range around nominal with correct logic.

        Returns ``None`` when the nominal threshold itself fails.
        """
        ordered = sorted(self.entries, key=lambda e: e.threshold)
        if not ordered:
            return None
        closest_index = min(
            range(len(ordered)),
            key=lambda i: abs(ordered[i].threshold - self.nominal_threshold),
        )
        if not ordered[closest_index].matches:
            return None
        low_index = closest_index
        while low_index > 0 and ordered[low_index - 1].matches:
            low_index -= 1
        high_index = closest_index
        while high_index < len(ordered) - 1 and ordered[high_index + 1].matches:
            high_index += 1
        return ordered[low_index].threshold, ordered[high_index].threshold

    def summary(self) -> str:
        window = self.operating_window()
        window_text = (
            f"{window[0]:g}..{window[1]:g}" if window is not None else "none around nominal"
        )
        return (
            f"{self.circuit_name}: logic correct at {len(self.correct_thresholds)}/"
            f"{len(self.entries)} tested thresholds; operating window {window_text} "
            f"(nominal {self.nominal_threshold:g})"
        )


def assess_robustness(
    circuit: GeneticCircuit,
    thresholds: Sequence[float],
    nominal_threshold: float = 15.0,
    hold_time: float = 250.0,
    repeats: int = 1,
    simulator: str = "ssa",
    rng: RandomState = None,
    fov_ud: float = 0.25,
    workers: Optional[int] = None,
    executor=None,
    progress=None,
    *,
    jobs: Optional[int] = None,
) -> RobustnessReport:
    """Sweep the thresholds and package the verdicts into a report.

    The underlying sweep runs through the ensemble engine; ``workers=N``
    parallelises the per-threshold simulations across worker processes
    (``jobs=`` is a deprecated alias), and an opened ``executor`` lets
    several robustness reports share one live worker pool.
    """
    workers = canonical_workers(workers, jobs, default=1)
    if nominal_threshold <= 0:
        raise AnalysisError("nominal_threshold must be positive")
    entries = threshold_sweep(
        circuit,
        thresholds,
        hold_time=hold_time,
        repeats=repeats,
        simulator=simulator,
        rng=rng,
        fov_ud=fov_ud,
        workers=workers,
        executor=executor,
        progress=progress,
    )
    return RobustnessReport(
        circuit_name=circuit.name,
        nominal_threshold=float(nominal_threshold),
        entries=entries,
    )
