"""Command-line interface (``genlogic``).

Four sub-commands cover the paper's workflow end to end:

``genlogic list``
    Show the built-in circuit suite (the 15 circuits of the evaluation).
``genlogic simulate CIRCUIT --out data.csv``
    Run a virtual-laboratory experiment on a built-in circuit (or an SBML
    file) and log the traces to CSV.
``genlogic analyze data.csv --threshold 15``
    Run the logic analysis and verification algorithm on a logged CSV.
``genlogic verify CIRCUIT``
    Simulate, analyse and verify a built-in circuit in one go.
``genlogic synth 0x0B``
    Synthesize a NOT/NOR netlist for a truth table given as a hex name or an
    expression and print its structure.
``genlogic worker --connect host:port`` / ``--listen host:port``
    Serve as one node of a distributed ensemble fabric (see below).

Multi-run execution: ``simulate``, ``verify`` and ``runtime`` accept
``--replicates N`` (independent seeded runs; measurement repeats for
``runtime``) and ``--jobs N`` (worker processes).  Simulation batches go
through :mod:`repro.engine`, so their results are bit-identical regardless
of ``--jobs``; ``runtime`` measures wall time, which is inherently
jobs-sensitive.  Replicate CSVs are written as each run completes (the
engine's streamed path), and a live ``done/total`` progress line is shown on
interactive terminals — ``--progress`` / ``--no-progress`` override the TTY
autodetection (CI logs stay clean by default).  ``simulate`` and ``verify``
also accept ``--batch B``: replicates are dispatched in lockstep batches of
up to B per worker call (one propensity evaluation per step for the whole
batch, one compact binary result frame per batch) — bit-identical to
``--batch 1``, just less dispatch overhead per replicate.

Distributed execution: the same three sub-commands accept
``--dispatch host:port,...`` — a comma-separated list of machines running
``genlogic worker --listen host:port`` — and shard the batch across them via
:class:`repro.engine.DistributedEnsembleExecutor`, with results bit-identical
to ``--jobs`` (and to serial) for the same seed.  A worker started with
``--connect`` instead dials a listening coordinator (the
``DistributedEnsembleExecutor(listen=...)`` shape used by services and
tests).  ``--dispatch`` and ``--jobs`` are mutually exclusive.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from contextlib import contextmanager
from typing import Optional, Sequence

from .analysis.replicates import run_replicate_study
from .analysis.runtime import measure_analysis_runtime
from .engine.distributed import DistributedEnsembleExecutor, parse_dispatch_spec
from .core.analyzer import LogicAnalyzer
from .core.report import format_analysis_report
from .errors import ReproError
from .gates.cello import CELLO_CIRCUIT_NAMES, cello_circuit
from .gates.circuits import (
    GeneticCircuit,
    and_gate_circuit,
    nand_gate_circuit,
    nor_gate_circuit,
    not_gate_circuit,
    or_gate_circuit,
    standard_suite,
)
from .gates.synthesis import synthesize_from_expression, synthesize_from_hex
from .io.csvlog import read_datalog_csv, write_datalog_csv
from .io.results import save_result_json
from .sbml.reader import read_sbml_file
from .vlab.experiment import LogicExperiment
from .version import __version__

__all__ = ["main", "build_parser"]

_NAMED_CIRCUITS = {
    "not": not_gate_circuit,
    "and": and_gate_circuit,
    "or": or_gate_circuit,
    "nand": nand_gate_circuit,
    "nor": nor_gate_circuit,
}


def _resolve_circuit(name: str) -> GeneticCircuit:
    """Look up a built-in circuit by name (``and``, ``0x0B``, ``cello_0x0b``...)."""
    key = name.lower()
    if key in _NAMED_CIRCUITS:
        return _NAMED_CIRCUITS[key]()
    if key.startswith("cello_"):
        key = key[len("cello_") :]
    if key.startswith("0x"):
        return cello_circuit(key)
    raise ReproError(
        f"unknown circuit {name!r}; use one of {sorted(_NAMED_CIRCUITS)} or a hex name "
        "such as 0x0B",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="genlogic",
        description="Logic analysis and verification of n-input genetic logic circuits",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list the built-in circuit suite")
    list_parser.add_argument(
        "--cello-only",
        action="store_true",
        help="only list the ten Cello circuits",
    )

    simulate = subparsers.add_parser("simulate", help="run a virtual-lab experiment")
    simulate.add_argument("circuit", help="built-in circuit name or path to an SBML file")
    simulate.add_argument("--out", required=True, help="CSV file to write the data log to")
    simulate.add_argument("--inputs", nargs="*", help="input species (SBML models only)")
    simulate.add_argument("--output", help="output species (SBML models only)")
    simulate.add_argument("--hold-time", type=float, default=250.0)
    simulate.add_argument("--repeats", type=int, default=1)
    simulate.add_argument("--input-high", type=float, default=None)
    simulate.add_argument("--simulator", default="ssa")
    simulate.add_argument("--seed", type=int, default=None)
    simulate.add_argument(
        "--replicates",
        type=int,
        default=1,
        help="independent seeded runs; replicate R is written to OUT with a -rR suffix",
    )
    simulate.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the replicate batch",
    )
    _add_dispatch_flag(simulate)
    _add_batch_flag(simulate)
    _add_progress_flag(simulate)

    analyze = subparsers.add_parser("analyze", help="analyze a logged CSV")
    analyze.add_argument("datalog", help="CSV produced by 'genlogic simulate'")
    analyze.add_argument("--threshold", type=float, default=15.0)
    analyze.add_argument("--fov", type=float, default=0.25, help="acceptable fraction of variation")
    analyze.add_argument("--expected", help="expected behaviour (expression or hex name)")
    analyze.add_argument("--output-species", help="analyse an intermediate species instead")
    analyze.add_argument("--json", help="also write the result as JSON to this path")

    verify = subparsers.add_parser("verify", help="simulate + analyze + verify a built-in circuit")
    verify.add_argument("circuit", help="built-in circuit name or hex name")
    verify.add_argument("--threshold", type=float, default=15.0)
    verify.add_argument("--fov", type=float, default=0.25)
    verify.add_argument("--hold-time", type=float, default=250.0)
    verify.add_argument("--repeats", type=int, default=1)
    verify.add_argument("--simulator", default="ssa")
    verify.add_argument("--seed", type=int, default=None)
    verify.add_argument("--json", help="also write the result as JSON to this path")
    verify.add_argument(
        "--replicates",
        type=int,
        default=1,
        help="run a replicate study instead of a single verification",
    )
    verify.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the replicate batch",
    )
    _add_dispatch_flag(verify)
    _add_batch_flag(verify)
    _add_progress_flag(verify)

    synth = subparsers.add_parser("synth", help="synthesize a NOT/NOR netlist")
    synth.add_argument("spec", help="hex truth-table name (0x0B) or Boolean expression")
    synth.add_argument("--inputs", nargs="*", help="input names (default LacI TetR AraC)")

    runtime = subparsers.add_parser("runtime", help="measure analyzer throughput")
    runtime.add_argument("--sizes", nargs="*", type=int, default=[10_000, 100_000, 1_000_000])
    runtime.add_argument("--inputs", type=int, default=3)
    runtime.add_argument("--seed", type=int, default=0)
    runtime.add_argument(
        "--replicates",
        type=int,
        default=3,
        help="measurement repeats per size (the minimum wall time is reported)",
    )
    runtime.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes measuring different sizes concurrently",
    )
    _add_dispatch_flag(runtime)
    _add_progress_flag(runtime)

    worker = subparsers.add_parser(
        "worker",
        help="serve as one node of a distributed ensemble fabric",
    )
    worker_mode = worker.add_mutually_exclusive_group(required=True)
    worker_mode.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="dial a listening coordinator and serve that one session",
    )
    worker_mode.add_argument(
        "--listen",
        metavar="HOST:PORT",
        help="bind and serve coordinator sessions (the --dispatch shape)",
    )
    worker.add_argument(
        "--capacity",
        type=int,
        default=1,
        help=(
            "jobs the coordinator may pipeline to this worker at once; they "
            "execute sequentially — >1 hides dispatch latency, it is not "
            "worker-side parallelism (run one worker per core for that)"
        ),
    )
    worker.add_argument(
        "--max-sessions",
        type=int,
        default=None,
        help="with --listen: exit after serving this many coordinator sessions",
    )

    return parser


def _add_dispatch_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--dispatch",
        metavar="HOST:PORT,...",
        default=None,
        help=(
            "shard the batch across 'genlogic worker --listen' processes at "
            "these addresses (bit-identical results; excludes --jobs)"
        ),
    )


def _add_batch_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--batch",
        type=int,
        default=1,
        metavar="B",
        help=(
            "replicates per worker dispatch: run lockstep batches of up to B "
            "replicates per call (bit-identical to --batch 1, lower dispatch "
            "and result-transport overhead)"
        ),
    )


def _add_progress_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--progress",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="force the live progress line on/off (default: on when stderr is a TTY)",
    )


def _progress_hook(args: argparse.Namespace, unit: str = "runs"):
    """A live ``done/total`` progress line on stderr, or ``None`` when disabled.

    Enabled only on interactive terminals unless forced by ``--progress`` /
    ``--no-progress``, so redirected output and CI logs never see control
    characters.  The line is erased once the batch finishes, keeping the
    final report clean.
    """
    enabled = getattr(args, "progress", None)
    stream = sys.stderr
    if enabled is None:
        enabled = bool(getattr(stream, "isatty", lambda: False)())
    if not enabled:
        return None

    def hook(done: int, total: int, payload) -> None:
        line = f"{done}/{total} {unit}"
        if done >= total:
            stream.write("\r" + " " * len(line) + "\r")
        else:
            stream.write("\r" + line)
        stream.flush()

    return hook


def _command_list(args: argparse.Namespace) -> int:
    circuits = (
        [cello_circuit(name) for name in CELLO_CIRCUIT_NAMES]
        if args.cello_only
        else standard_suite()
    )
    for circuit in circuits:
        print(circuit.summary())
    return 0


def _replicate_out_path(out: str, replicate: int) -> str:
    """``data.csv`` -> ``data-r3.csv`` for replicate 3."""
    stem, extension = os.path.splitext(out)
    return f"{stem}-r{replicate}{extension}"


def _command_simulate(args: argparse.Namespace) -> int:
    if args.replicates < 1:
        raise ReproError("--replicates must be at least 1")
    _validate_jobs(args)
    if args.circuit.endswith(".xml") or args.circuit.endswith(".sbml"):
        model = read_sbml_file(args.circuit)
        if not args.inputs or not args.output:
            raise ReproError("--inputs and --output are required when simulating an SBML file")
        experiment = LogicExperiment(
            model=model,
            input_species=list(args.inputs),
            output_species=args.output,
            input_high=args.input_high if args.input_high is not None else 40.0,
            simulator=args.simulator,
        )
    else:
        circuit = _resolve_circuit(args.circuit)
        experiment = LogicExperiment.for_circuit(
            circuit,
            simulator=args.simulator,
            input_high=args.input_high,
        )
    if args.replicates == 1:
        _warn_if_jobs_unused(args)
        # Single run: the seed feeds the simulator directly (the historical
        # behaviour, so seeded CSVs stay reproducible across versions).
        log = experiment.run(hold_time=args.hold_time, repeats=args.repeats, rng=args.seed)
        write_datalog_csv(log, args.out)
        print(f"wrote {log.n_samples} samples for {log.circuit_name or args.circuit} to {args.out}")
        return 0
    # Streamed execution: each replicate's CSV is written the moment its run
    # completes and the trajectory is dropped, so memory stays bounded no
    # matter how many replicates were requested.
    with _dispatch_executor(args) as executor:
        stream = experiment.iter_replicates(
            args.replicates,
            hold_time=args.hold_time,
            repeats=args.repeats,
            seed=args.seed,
            workers=args.jobs,
            executor=executor,
            progress=_progress_hook(args),
            batch_size=getattr(args, "batch", 1),
        )
        with stream:
            for index, log in stream:
                path = _replicate_out_path(args.out, index)
                write_datalog_csv(log, path)
                print(
                    f"wrote {log.n_samples} samples for "
                    f"{log.circuit_name or args.circuit} to {path}"
                )
    print(stream.stats.summary())
    return 0


def _command_analyze(args: argparse.Namespace) -> int:
    log = read_datalog_csv(args.datalog)
    analyzer = LogicAnalyzer(threshold=args.threshold, fov_ud=args.fov)
    result = analyzer.analyze(log, expected=args.expected, output_species=args.output_species)
    print(format_analysis_report(result))
    if args.json:
        save_result_json(result, args.json)
        print(f"result JSON written to {args.json}")
    return 0


def _validate_jobs(args: argparse.Namespace) -> None:
    if args.jobs < 1:
        raise ReproError("--jobs must be at least 1")
    if getattr(args, "dispatch", None) is not None and args.jobs > 1:
        raise ReproError("--dispatch and --jobs are mutually exclusive")
    if getattr(args, "batch", 1) < 1:
        raise ReproError("--batch must be at least 1")


@contextmanager
def _dispatch_executor(args: argparse.Namespace):
    """The distributed executor for ``--dispatch host:port,...`` (or ``None``).

    The CLI owns the executor's lifecycle: commands run their batches inside
    this context and the executor is closed on exit (disconnecting from the
    workers, which keep listening for the next coordinator).  Without
    ``--dispatch`` the context yields ``None`` and the command falls back to
    its ``--jobs`` behaviour.
    """
    spec = getattr(args, "dispatch", None)
    if spec is None:
        yield None
        return
    executor = DistributedEnsembleExecutor(connect=parse_dispatch_spec(spec))
    try:
        yield executor
    finally:
        executor.close()


def _warn_if_jobs_unused(args: argparse.Namespace) -> None:
    if args.jobs > 1 or getattr(args, "dispatch", None) is not None:
        print(
            "note: --jobs only parallelises replicate batches (--dispatch "
            "likewise); a single run (--replicates 1) executes serially",
            file=sys.stderr,
        )


def _command_verify(args: argparse.Namespace) -> int:
    circuit = _resolve_circuit(args.circuit)
    if args.replicates < 1:
        raise ReproError("--replicates must be at least 1")
    _validate_jobs(args)
    if args.replicates == 1:
        _warn_if_jobs_unused(args)
    if args.replicates > 1:
        with _dispatch_executor(args) as executor:
            study = run_replicate_study(
                circuit,
                n_replicates=args.replicates,
                threshold=args.threshold,
                fov_ud=args.fov,
                hold_time=args.hold_time,
                repeats=args.repeats,
                simulator=args.simulator,
                rng=args.seed,
                jobs=args.jobs,
                executor=executor,
                progress=_progress_hook(args),
                batch_size=getattr(args, "batch", 1),
            )
        print(study.summary())
        agreement = study.combination_agreement()
        worst = study.worst_combination()
        print(f"worst combination: {worst} ({agreement[worst] * 100:.0f}% agreement)")
        print(study.stats.summary())
        if args.json:
            payload = {
                "circuit": study.circuit_name,
                "n_replicates": study.n_replicates,
                "recovery_rate": study.recovery_rate,
                "mean_fitness": study.mean_fitness,
                "std_fitness": study.std_fitness,
                "combination_agreement": agreement,
                "engine": {
                    "executor": study.stats.executor,
                    "workers": study.stats.workers,
                    "wall_seconds": study.stats.wall_seconds,
                    "runs_per_second": study.stats.runs_per_second,
                },
            }
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2)
            print(f"study JSON written to {args.json}")
        return 0 if study.recovery_rate == 1.0 else 1
    experiment = LogicExperiment.for_circuit(circuit, simulator=args.simulator)
    log = experiment.run(hold_time=args.hold_time, repeats=args.repeats, rng=args.seed)
    analyzer = LogicAnalyzer(threshold=args.threshold, fov_ud=args.fov)
    result = analyzer.analyze(log, expected=circuit.expected_table)
    print(format_analysis_report(result))
    if args.json:
        save_result_json(result, args.json)
        print(f"result JSON written to {args.json}")
    return 0 if result.comparison and result.comparison.matches else 1


def _command_synth(args: argparse.Namespace) -> int:
    inputs = args.inputs or ["LacI", "TetR", "AraC"]
    if args.spec.lower().startswith("0x"):
        netlist = synthesize_from_hex(args.spec, inputs=inputs)
    else:
        netlist = synthesize_from_expression(args.spec, inputs=None if not args.inputs else inputs)
    print(netlist.describe())
    print(f"expected behaviour: {netlist.truth_table().to_hex()}")
    return 0


def _command_runtime(args: argparse.Namespace) -> int:
    _validate_jobs(args)
    with _dispatch_executor(args) as executor:
        measurements = measure_analysis_runtime(
            args.sizes,
            n_inputs=args.inputs,
            rng=args.seed,
            repeats=args.replicates,
            jobs=args.jobs,
            executor=executor,
            progress=_progress_hook(args, unit="sizes"),
        )
    for measurement in measurements:
        print(measurement.summary())
    return 0


def _command_worker(args: argparse.Namespace) -> int:
    from .engine.worker import run_worker

    if args.capacity < 1:
        raise ReproError("--capacity must be at least 1")
    if args.max_sessions is not None and args.connect:
        raise ReproError("--max-sessions only applies to --listen workers")
    try:
        run_worker(
            connect=args.connect,
            listen=args.listen,
            capacity=args.capacity,
            max_sessions=args.max_sessions,
        )
    except OSError as error:
        # Refused/unreachable coordinator, port in use, ...: CLI-style error,
        # not a traceback.
        raise ReproError(f"worker transport error: {error}") from error
    return 0


_COMMANDS = {
    "list": _command_list,
    "simulate": _command_simulate,
    "analyze": _command_analyze,
    "verify": _command_verify,
    "synth": _command_synth,
    "runtime": _command_runtime,
    "worker": _command_worker,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``genlogic`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
