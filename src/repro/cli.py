"""Command-line interface (``genlogic``).

Four sub-commands cover the paper's workflow end to end:

``genlogic list``
    Show the built-in circuit suite (the 15 circuits of the evaluation).
``genlogic simulate CIRCUIT --out data.csv``
    Run a virtual-laboratory experiment on a built-in circuit (or an SBML
    file) and log the traces to CSV.
``genlogic analyze data.csv --threshold 15``
    Run the logic analysis and verification algorithm on a logged CSV.
``genlogic verify CIRCUIT``
    Simulate, analyse and verify a built-in circuit in one go.
``genlogic synth 0x0B``
    Synthesize a NOT/NOR netlist for a truth table given as a hex name or an
    expression and print its structure.
``genlogic search 0x0B --budget-replicates 500``
    Design-space search: enumerate every part assignment of the function
    (repressor permutations × ``--variant`` kinetic override sets), allocate
    replicates adaptively (racing/successive halving) and print the ranked
    frontier.  Accepts the same execution flags as ``verify``
    (``--workers`` / ``--dispatch`` / ``--batch``) with bit-identical
    frontiers on every backend, and ``--spec FILE.json`` with a canonical
    :class:`~repro.search.SearchSpec` body.
``genlogic worker --connect host:port`` / ``--listen host:port``
    Serve as one node of a distributed ensemble fabric (see below).
``genlogic serve --port 8080 --workers 4``
    Run the HTTP analysis service (``POST /v1/studies`` with a StudySpec
    body; see :mod:`repro.service`) over one warm worker pool — or over the
    distributed fabric with ``--dispatch``.  Loopback binds only, until the
    fabric's HMAC handshake lands.

Multi-run execution: ``simulate``, ``verify`` and ``runtime`` accept
``--replicates N`` (independent seeded runs; measurement repeats for
``runtime``) and ``--workers N`` (worker processes; ``--jobs`` is the
deprecated spelling of the same flag).  Simulation batches go through
:mod:`repro.engine`, so their results are bit-identical regardless of
``--workers``; ``runtime`` measures wall time, which is inherently
workers-sensitive.  Replicate CSVs are written as each run completes (the
engine's streamed path), and a live ``done/total`` progress line is shown on
interactive terminals — ``--progress`` / ``--no-progress`` override the TTY
autodetection (CI logs stay clean by default).  ``simulate`` and ``verify``
also accept ``--batch B``: replicates are dispatched in lockstep batches of
up to B per worker call (one propensity evaluation per step for the whole
batch, one compact binary result frame per batch) — bit-identical to
``--batch 1``, just less dispatch overhead per replicate.

Distributed execution: the same three sub-commands accept
``--dispatch host:port,...`` — a comma-separated list of machines running
``genlogic worker --listen host:port`` — and shard the batch across them via
:class:`repro.engine.DistributedEnsembleExecutor`, with results bit-identical
to ``--workers`` (and to serial) for the same seed.  A worker started with
``--connect`` instead dials a listening coordinator (the
``DistributedEnsembleExecutor(listen=...)`` shape used by services and
tests).  ``--dispatch`` and ``--workers`` are mutually exclusive.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from contextlib import contextmanager
from typing import Optional, Sequence

from .analysis.replicates import run_replicate_study
from .analysis.runtime import measure_analysis_runtime
from .engine.distributed import DistributedEnsembleExecutor, parse_dispatch_spec
from .engine.spec import StudySpec, canonical_workers
from .core.analyzer import LogicAnalyzer
from .core.report import format_analysis_report
from .errors import ReproError
from .gates.cello import CELLO_CIRCUIT_NAMES, cello_circuit
from .gates.circuits import resolve_circuit, standard_suite
from .gates.synthesis import synthesize_from_expression, synthesize_from_hex
from .io.csvlog import read_datalog_csv, write_datalog_csv
from .io.results import save_result_json
from .sbml.reader import read_sbml_file
from .search import SearchSpec, run_design_search
from .vlab.experiment import LogicExperiment
from .version import __version__

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="genlogic",
        description="Logic analysis and verification of n-input genetic logic circuits",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list the built-in circuit suite")
    list_parser.add_argument(
        "--cello-only",
        action="store_true",
        help="only list the ten Cello circuits",
    )

    simulate = subparsers.add_parser("simulate", help="run a virtual-lab experiment")
    simulate.add_argument("circuit", help="built-in circuit name or path to an SBML file")
    simulate.add_argument("--out", required=True, help="CSV file to write the data log to")
    simulate.add_argument("--inputs", nargs="*", help="input species (SBML models only)")
    simulate.add_argument("--output", help="output species (SBML models only)")
    simulate.add_argument("--hold-time", type=float, default=250.0)
    simulate.add_argument("--repeats", type=int, default=1)
    simulate.add_argument("--input-high", type=float, default=None)
    simulate.add_argument("--simulator", default="ssa")
    simulate.add_argument("--seed", type=int, default=None)
    simulate.add_argument(
        "--replicates",
        type=int,
        default=1,
        help="independent seeded runs; replicate R is written to OUT with a -rR suffix",
    )
    _add_workers_flag(simulate, "worker processes for the replicate batch")
    _add_dispatch_flag(simulate)
    _add_batch_flag(simulate)
    _add_progress_flag(simulate)

    analyze = subparsers.add_parser("analyze", help="analyze a logged CSV")
    analyze.add_argument("datalog", help="CSV produced by 'genlogic simulate'")
    analyze.add_argument("--threshold", type=float, default=15.0)
    analyze.add_argument("--fov", type=float, default=0.25, help="acceptable fraction of variation")
    analyze.add_argument("--expected", help="expected behaviour (expression or hex name)")
    analyze.add_argument("--output-species", help="analyse an intermediate species instead")
    analyze.add_argument("--json", help="also write the result as JSON to this path")

    verify = subparsers.add_parser("verify", help="simulate + analyze + verify a built-in circuit")
    verify.add_argument(
        "circuit",
        nargs="?",
        default=None,
        help="built-in circuit name or hex name (omit when using --spec)",
    )
    verify.add_argument(
        "--spec",
        default=None,
        metavar="FILE.json",
        help=(
            "run the StudySpec in this JSON file (the canonical request form; "
            "study-defining flags may not be combined with it)"
        ),
    )
    verify.add_argument("--threshold", type=float, default=None)
    verify.add_argument("--fov", type=float, default=None)
    verify.add_argument("--hold-time", type=float, default=None)
    verify.add_argument("--repeats", type=int, default=None)
    verify.add_argument("--simulator", default=None)
    verify.add_argument("--seed", type=int, default=None)
    verify.add_argument("--json", help="also write the result as JSON to this path")
    verify.add_argument(
        "--replicates",
        type=int,
        default=None,
        help="run a replicate study instead of a single verification",
    )
    _add_workers_flag(verify, "worker processes for the replicate batch")
    _add_dispatch_flag(verify)
    _add_batch_flag(verify)
    _add_progress_flag(verify)

    synth = subparsers.add_parser("synth", help="synthesize a NOT/NOR netlist")
    synth.add_argument("spec", help="hex truth-table name (0x0B) or Boolean expression")
    synth.add_argument("--inputs", nargs="*", help="input names (default LacI TetR AraC)")

    search = subparsers.add_parser(
        "search",
        help="design-space search: rank every part assignment of a function",
    )
    search.add_argument(
        "function",
        nargs="?",
        default=None,
        help="hex truth-table name, e.g. 0x0B (omit when using --spec)",
    )
    search.add_argument(
        "--spec",
        default=None,
        metavar="FILE.json",
        help=(
            "run the SearchSpec in this JSON file (the canonical request form; "
            "search-defining flags may not be combined with it)"
        ),
    )
    search.add_argument("--inputs", nargs="*", help="input proteins (default LacI TetR AraC)")
    search.add_argument("--library", default=None, help="parts library name (default: diverse)")
    search.add_argument("--output-protein", default=None)
    search.add_argument(
        "--variant",
        action="append",
        default=None,
        metavar="NAME=VALUE[,NAME=VALUE...]",
        help=(
            "add one kinetic variant (a set of parameter overrides applied at "
            "simulation time) to the candidate grid; repeatable — the "
            "no-override baseline variant is always part of the grid"
        ),
    )
    search.add_argument("--allocator", choices=["racing", "fixed"], default=None)
    search.add_argument(
        "--budget-replicates",
        type=int,
        default=None,
        help="hard cap on total replicates across the search",
    )
    search.add_argument(
        "--fixed-replicates",
        type=int,
        default=None,
        help="replicates per candidate (fixed allocator) / per-candidate cap (racing)",
    )
    search.add_argument("--n0", type=int, default=None, help="initial replicates per candidate")
    search.add_argument(
        "--refine-step",
        type=int,
        default=None,
        help="replicates added per racing round to each still-ambiguous candidate",
    )
    search.add_argument("--top-k", type=int, default=None, help="frontier size to separate")
    search.add_argument("--max-candidates", type=int, default=None)
    search.add_argument("--hold-time", type=float, default=None)
    search.add_argument("--threshold", type=float, default=None)
    search.add_argument("--simulator", default=None)
    search.add_argument("--seed", type=int, default=None)
    search.add_argument("--json", help="write the frontier payload as JSON to this path")
    _add_workers_flag(search, "worker processes for the replicate rounds")
    _add_dispatch_flag(search)
    _add_batch_flag(search)
    _add_progress_flag(search)

    runtime = subparsers.add_parser("runtime", help="measure analyzer throughput")
    runtime.add_argument("--sizes", nargs="*", type=int, default=[10_000, 100_000, 1_000_000])
    runtime.add_argument("--inputs", type=int, default=3)
    runtime.add_argument("--seed", type=int, default=0)
    runtime.add_argument(
        "--replicates",
        type=int,
        default=3,
        help="measurement repeats per size (the minimum wall time is reported)",
    )
    _add_workers_flag(runtime, "worker processes measuring different sizes concurrently")
    _add_dispatch_flag(runtime)
    _add_progress_flag(runtime)

    worker = subparsers.add_parser(
        "worker",
        help="serve as one node of a distributed ensemble fabric",
    )
    worker_mode = worker.add_mutually_exclusive_group(required=True)
    worker_mode.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="dial a listening coordinator and serve that one session",
    )
    worker_mode.add_argument(
        "--listen",
        metavar="HOST:PORT",
        help="bind and serve coordinator sessions (the --dispatch shape)",
    )
    worker.add_argument(
        "--capacity",
        type=int,
        default=1,
        help=(
            "jobs the coordinator may pipeline to this worker at once; they "
            "execute sequentially — >1 hides dispatch latency, it is not "
            "worker-side parallelism (run one worker per core for that)"
        ),
    )
    worker.add_argument(
        "--max-sessions",
        type=int,
        default=None,
        help="with --listen: exit after serving this many coordinator sessions",
    )
    _add_key_flag(worker)

    supervisor = subparsers.add_parser(
        "supervisor",
        help="keep a target number of local genlogic worker processes running",
    )
    supervisor.add_argument(
        "target",
        type=int,
        help="number of worker processes to keep alive",
    )
    supervisor_mode = supervisor.add_mutually_exclusive_group(required=True)
    supervisor_mode.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="supervised workers dial this listening coordinator",
    )
    supervisor_mode.add_argument(
        "--listen-base",
        metavar="HOST:PORT",
        help=(
            "supervised worker i listens on PORT+i (feed the printed list to a "
            "coordinator's --dispatch)"
        ),
    )
    supervisor.add_argument(
        "--capacity",
        type=int,
        default=1,
        help="pipelining depth advertised by each supervised worker",
    )
    supervisor.add_argument(
        "--status-port",
        type=int,
        default=None,
        help="also serve GET /status (JSON health) on this loopback port",
    )
    supervisor.add_argument(
        "--stable-after",
        type=float,
        default=5.0,
        help="seconds of uptime after which a worker's restart backoff resets",
    )
    _add_key_flag(supervisor)

    serve = subparsers.add_parser(
        "serve",
        help="run the HTTP analysis service (StudySpec in, cached results out)",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help=(
            "bind address; non-loopback binds require a fabric key "
            "(--key-file or GENLOGIC_FABRIC_KEY)"
        ),
    )
    serve.add_argument("--port", type=int, default=8080, help="listen port (0 = ephemeral)")
    _add_workers_flag(serve, "local worker processes for the shared pool")
    _add_dispatch_flag(serve)
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=4,
        help="concurrently executing studies before submissions get 429",
    )
    serve.add_argument(
        "--max-replicates",
        type=int,
        default=64,
        help="per-request replicate budget (larger specs get 413)",
    )
    serve.add_argument(
        "--max-search-replicates",
        type=int,
        default=5000,
        help="per-request total replicate budget for POST /v1/search (413 beyond)",
    )
    serve.add_argument(
        "--cache-bytes",
        type=int,
        default=64 * 1024 * 1024,
        help="byte budget of the content-addressed result cache (0 disables)",
    )
    serve.add_argument(
        "--supervise",
        type=int,
        default=None,
        metavar="N",
        help=(
            "run studies on a supervised fabric of N auto-restarting local "
            "worker processes (excludes --dispatch)"
        ),
    )

    return parser


def _add_workers_flag(subparser: argparse.ArgumentParser, help_text: str) -> None:
    subparser.add_argument("--workers", type=int, default=None, help=help_text)
    subparser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="deprecated alias for --workers (same meaning)",
    )


def _add_dispatch_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--dispatch",
        metavar="HOST:PORT,...",
        default=None,
        help=(
            "shard the batch across 'genlogic worker --listen' processes at "
            "these addresses (bit-identical results; excludes --jobs)"
        ),
    )
    _add_key_flag(subparser)


def _add_key_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--key-file",
        metavar="PATH",
        default=None,
        help=(
            "file holding the shared fabric secret for the authenticated "
            "HMAC handshake (default: the GENLOGIC_FABRIC_KEY environment "
            "variable; neither = unauthenticated trusted-network mode)"
        ),
    )


def _add_batch_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--batch",
        type=int,
        default=1,
        metavar="B",
        help=(
            "replicates per worker dispatch: run lockstep batches of up to B "
            "replicates per call (bit-identical to --batch 1, lower dispatch "
            "and result-transport overhead)"
        ),
    )


def _add_progress_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--progress",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="force the live progress line on/off (default: on when stderr is a TTY)",
    )


def _progress_hook(args: argparse.Namespace, unit: str = "runs"):
    """A live ``done/total`` progress line on stderr, or ``None`` when disabled.

    Enabled only on interactive terminals unless forced by ``--progress`` /
    ``--no-progress``, so redirected output and CI logs never see control
    characters.  The line is erased once the batch finishes, keeping the
    final report clean.
    """
    enabled = getattr(args, "progress", None)
    stream = sys.stderr
    if enabled is None:
        enabled = bool(getattr(stream, "isatty", lambda: False)())
    if not enabled:
        return None

    def hook(done: int, total: int, payload) -> None:
        line = f"{done}/{total} {unit}"
        if done >= total:
            stream.write("\r" + " " * len(line) + "\r")
        else:
            stream.write("\r" + line)
        stream.flush()

    return hook


def _command_list(args: argparse.Namespace) -> int:
    circuits = (
        [cello_circuit(name) for name in CELLO_CIRCUIT_NAMES]
        if args.cello_only
        else standard_suite()
    )
    for circuit in circuits:
        print(circuit.summary())
    return 0


def _replicate_out_path(out: str, replicate: int) -> str:
    """``data.csv`` -> ``data-r3.csv`` for replicate 3."""
    stem, extension = os.path.splitext(out)
    return f"{stem}-r{replicate}{extension}"


def _command_simulate(args: argparse.Namespace) -> int:
    if args.replicates < 1:
        raise ReproError("--replicates must be at least 1")
    _validate_workers(args)
    if args.circuit.endswith(".xml") or args.circuit.endswith(".sbml"):
        model = read_sbml_file(args.circuit)
        if not args.inputs or not args.output:
            raise ReproError("--inputs and --output are required when simulating an SBML file")
        experiment = LogicExperiment(
            model=model,
            input_species=list(args.inputs),
            output_species=args.output,
            input_high=args.input_high if args.input_high is not None else 40.0,
            simulator=args.simulator,
        )
    else:
        circuit = resolve_circuit(args.circuit)
        experiment = LogicExperiment.for_circuit(
            circuit,
            simulator=args.simulator,
            input_high=args.input_high,
        )
    if args.replicates == 1:
        _warn_if_workers_unused(args)
        # Single run: the seed feeds the simulator directly (the historical
        # behaviour, so seeded CSVs stay reproducible across versions).
        log = experiment.run(hold_time=args.hold_time, repeats=args.repeats, rng=args.seed)
        write_datalog_csv(log, args.out)
        print(f"wrote {log.n_samples} samples for {log.circuit_name or args.circuit} to {args.out}")
        return 0
    # Streamed execution: each replicate's CSV is written the moment its run
    # completes and the trajectory is dropped, so memory stays bounded no
    # matter how many replicates were requested.
    with _dispatch_executor(args) as executor:
        stream = experiment.iter_replicates(
            args.replicates,
            hold_time=args.hold_time,
            repeats=args.repeats,
            seed=args.seed,
            workers=args.workers,
            executor=executor,
            progress=_progress_hook(args),
            batch_size=getattr(args, "batch", 1),
        )
        with stream:
            for index, log in stream:
                path = _replicate_out_path(args.out, index)
                write_datalog_csv(log, path)
                print(
                    f"wrote {log.n_samples} samples for "
                    f"{log.circuit_name or args.circuit} to {path}"
                )
    print(stream.stats.summary())
    return 0


def _command_analyze(args: argparse.Namespace) -> int:
    log = read_datalog_csv(args.datalog)
    analyzer = LogicAnalyzer(threshold=args.threshold, fov_ud=args.fov)
    result = analyzer.analyze(log, expected=args.expected, output_species=args.output_species)
    print(format_analysis_report(result))
    if args.json:
        save_result_json(result, args.json)
        print(f"result JSON written to {args.json}")
    return 0


def _validate_workers(args: argparse.Namespace) -> None:
    """Fold the deprecated ``--jobs`` alias into canonical ``args.workers``."""
    if args.jobs is not None and args.jobs < 1:
        raise ReproError("--jobs must be at least 1")
    if args.workers is not None and args.workers < 1:
        raise ReproError("--workers must be at least 1")
    if args.jobs is not None:
        print("note: --jobs is deprecated; use --workers (same meaning)", file=sys.stderr)
    try:
        args.workers = canonical_workers(args.workers, args.jobs, default=1)
    except ReproError:
        raise ReproError("pass either --workers or the deprecated --jobs, not both") from None
    if getattr(args, "dispatch", None) is not None and args.workers > 1:
        raise ReproError("--dispatch and --workers/--jobs are mutually exclusive")
    if getattr(args, "batch", 1) < 1:
        raise ReproError("--batch must be at least 1")


@contextmanager
def _dispatch_executor(args: argparse.Namespace):
    """The distributed executor for ``--dispatch host:port,...`` (or ``None``).

    The CLI owns the executor's lifecycle: commands run their batches inside
    this context and the executor is closed on exit (disconnecting from the
    workers, which keep listening for the next coordinator).  Without
    ``--dispatch`` the context yields ``None`` and the command falls back to
    its ``--jobs`` behaviour.
    """
    spec = getattr(args, "dispatch", None)
    if spec is None:
        yield None
        return
    executor = DistributedEnsembleExecutor(
        connect=parse_dispatch_spec(spec),
        key_file=getattr(args, "key_file", None),
    )
    try:
        yield executor
    finally:
        executor.close()


def _warn_if_workers_unused(args: argparse.Namespace) -> None:
    if args.workers > 1 or getattr(args, "dispatch", None) is not None:
        print(
            "note: --workers / --jobs only parallelises replicate batches "
            "(--dispatch likewise); a single run (--replicates 1) executes serially",
            file=sys.stderr,
        )


def _load_spec_file(path: str) -> StudySpec:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return StudySpec.from_json(handle.read())
    except OSError as error:
        raise ReproError(f"cannot read spec file {path!r}: {error}") from None


def _print_replicate_study(study, args: argparse.Namespace) -> int:
    print(study.summary())
    agreement = study.combination_agreement()
    worst = study.worst_combination()
    print(f"worst combination: {worst} ({agreement[worst] * 100:.0f}% agreement)")
    print(study.stats.summary())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(study.to_payload(), handle, indent=2)
        print(f"study JSON written to {args.json}")
    return 0 if study.recovery_rate == 1.0 else 1


def _command_verify(args: argparse.Namespace) -> int:
    _validate_workers(args)
    if args.spec is not None:
        # The canonical request form: the spec IS the study; study-defining
        # flags may not silently disagree with it.
        conflicting = [
            flag
            for flag, value in (
                ("CIRCUIT", args.circuit),
                ("--threshold", args.threshold),
                ("--fov", args.fov),
                ("--hold-time", args.hold_time),
                ("--repeats", args.repeats),
                ("--simulator", args.simulator),
                ("--seed", args.seed),
                ("--replicates", args.replicates),
            )
            if value is not None
        ]
        if conflicting:
            raise ReproError(
                f"--spec may not be combined with {conflicting}; "
                "edit the spec file instead",
            )
        spec = _load_spec_file(args.spec)
        knobs = {}
        if args.workers != spec.workers and args.workers != 1:
            knobs["workers"] = args.workers
        if getattr(args, "batch", 1) != 1:
            knobs["batch_size"] = args.batch
        if knobs:
            spec = spec.replace(**knobs)
        with _dispatch_executor(args) as executor:
            study = run_replicate_study(spec, executor=executor, progress=_progress_hook(args))
        return _print_replicate_study(study, args)
    if args.circuit is None:
        raise ReproError("verify needs a circuit name or --spec FILE.json")
    circuit = resolve_circuit(args.circuit)
    replicates = args.replicates if args.replicates is not None else 1
    threshold = args.threshold if args.threshold is not None else 15.0
    fov = args.fov if args.fov is not None else 0.25
    hold_time = args.hold_time if args.hold_time is not None else 250.0
    repeats = args.repeats if args.repeats is not None else 1
    simulator = args.simulator if args.simulator is not None else "ssa"
    if replicates < 1:
        raise ReproError("--replicates must be at least 1")
    if replicates == 1:
        _warn_if_workers_unused(args)
    if replicates > 1:
        with _dispatch_executor(args) as executor:
            study = run_replicate_study(
                circuit,
                n_replicates=replicates,
                threshold=threshold,
                fov_ud=fov,
                hold_time=hold_time,
                repeats=repeats,
                simulator=simulator,
                rng=args.seed,
                workers=args.workers,
                executor=executor,
                progress=_progress_hook(args),
                batch_size=getattr(args, "batch", 1),
            )
        return _print_replicate_study(study, args)
    experiment = LogicExperiment.for_circuit(circuit, simulator=simulator)
    log = experiment.run(hold_time=hold_time, repeats=repeats, rng=args.seed)
    analyzer = LogicAnalyzer(threshold=threshold, fov_ud=fov)
    result = analyzer.analyze(log, expected=circuit.expected_table)
    print(format_analysis_report(result))
    if args.json:
        save_result_json(result, args.json)
        print(f"result JSON written to {args.json}")
    return 0 if result.comparison and result.comparison.matches else 1


def _parse_variant(text: str):
    """``"kmax=2.0,K0=5"`` → ``(("kmax", 2.0), ("K0", 5.0))``."""
    pairs = []
    for item in text.split(","):
        name, sep, value = item.partition("=")
        name = name.strip()
        if not sep or not name:
            raise ReproError(
                f"malformed --variant entry {item!r}: expected NAME=VALUE[,NAME=VALUE...]",
            )
        try:
            pairs.append((name, float(value)))
        except ValueError:
            raise ReproError(
                f"malformed --variant value in {item!r}: {value!r} is not a number",
            ) from None
    return tuple(pairs)


def _load_search_spec_file(path: str) -> SearchSpec:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return SearchSpec.from_json(handle.read())
    except OSError as error:
        raise ReproError(f"cannot read spec file {path!r}: {error}") from None


def _command_search(args: argparse.Namespace) -> int:
    _validate_workers(args)
    if args.spec is not None:
        conflicting = [
            flag
            for flag, value in (
                ("FUNCTION", args.function),
                ("--inputs", args.inputs),
                ("--library", args.library),
                ("--output-protein", args.output_protein),
                ("--variant", args.variant),
                ("--allocator", args.allocator),
                ("--budget-replicates", args.budget_replicates),
                ("--fixed-replicates", args.fixed_replicates),
                ("--n0", args.n0),
                ("--refine-step", args.refine_step),
                ("--top-k", args.top_k),
                ("--max-candidates", args.max_candidates),
                ("--hold-time", args.hold_time),
                ("--threshold", args.threshold),
                ("--simulator", args.simulator),
                ("--seed", args.seed),
            )
            if value is not None
        ]
        if conflicting:
            raise ReproError(
                f"--spec may not be combined with {conflicting}; "
                "edit the spec file instead",
            )
        spec = _load_search_spec_file(args.spec)
        knobs = {}
        if args.workers != spec.workers and args.workers != 1:
            knobs["workers"] = args.workers
        if getattr(args, "batch", 1) != 1:
            knobs["batch_size"] = args.batch
        if knobs:
            spec = spec.replace(**knobs)
    else:
        if args.function is None:
            raise ReproError("search needs a hex function name or --spec FILE.json")
        fields = {
            name: value
            for name, value in (
                ("inputs", tuple(args.inputs) if args.inputs else None),
                ("library", args.library),
                ("output_protein", args.output_protein),
                ("allocator", args.allocator),
                ("budget_replicates", args.budget_replicates),
                ("fixed_replicates", args.fixed_replicates),
                ("n0", args.n0),
                ("refine_step", args.refine_step),
                ("top_k", args.top_k),
                ("max_candidates", args.max_candidates),
                ("hold_time", args.hold_time),
                ("threshold", args.threshold),
                ("simulator", args.simulator),
                ("seed", args.seed),
            )
            if value is not None
        }
        if args.variant:
            # The baseline (no-override) variant always anchors the grid.
            fields["variants"] = ((),) + tuple(_parse_variant(v) for v in args.variant)
        fields["workers"] = args.workers
        if getattr(args, "batch", 1) != 1:
            fields["batch_size"] = args.batch
        spec = SearchSpec(function=args.function, **fields)
    with _dispatch_executor(args) as executor:
        frontier = run_design_search(
            spec,
            executor=executor,
            progress=_progress_hook(args, unit="replicates"),
        )
    print(frontier.summary())
    stats = frontier.engine_stats or {}
    if stats.get("executor") is not None:
        print(
            f"{frontier.total_replicates} replicates via {stats['executor']} "
            f"(workers={stats['workers']}) in {stats['wall_seconds']:.2f} s "
            f"({stats['replicates_per_second']:.2f} replicates/s)"
        )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(frontier.to_payload(), handle, indent=2)
        print(f"frontier JSON written to {args.json}")
    return 0


def _command_synth(args: argparse.Namespace) -> int:
    inputs = args.inputs or ["LacI", "TetR", "AraC"]
    if args.spec.lower().startswith("0x"):
        netlist = synthesize_from_hex(args.spec, inputs=inputs)
    else:
        netlist = synthesize_from_expression(args.spec, inputs=None if not args.inputs else inputs)
    print(netlist.describe())
    print(f"expected behaviour: {netlist.truth_table().to_hex()}")
    return 0


def _command_runtime(args: argparse.Namespace) -> int:
    _validate_workers(args)
    with _dispatch_executor(args) as executor:
        measurements = measure_analysis_runtime(
            args.sizes,
            n_inputs=args.inputs,
            rng=args.seed,
            repeats=args.replicates,
            workers=args.workers,
            executor=executor,
            progress=_progress_hook(args, unit="sizes"),
        )
    for measurement in measurements:
        print(measurement.summary())
    return 0


def _command_worker(args: argparse.Namespace) -> int:
    from .engine.worker import run_worker

    if args.capacity < 1:
        raise ReproError("--capacity must be at least 1")
    if args.max_sessions is not None and args.connect:
        raise ReproError("--max-sessions only applies to --listen workers")
    try:
        run_worker(
            connect=args.connect,
            listen=args.listen,
            capacity=args.capacity,
            max_sessions=args.max_sessions,
            key_file=args.key_file,
        )
    except OSError as error:
        # Refused/unreachable coordinator, port in use, ...: CLI-style error,
        # not a traceback.
        raise ReproError(f"worker transport error: {error}") from error
    return 0


def _command_supervisor(args: argparse.Namespace) -> int:
    from .engine.supervisor import WorkerSupervisor

    if args.target < 0:
        raise ReproError("supervisor target must be non-negative")
    if args.capacity < 1:
        raise ReproError("--capacity must be at least 1")
    supervisor = WorkerSupervisor(
        args.target,
        connect=args.connect,
        listen_base=args.listen_base,
        capacity=args.capacity,
        key_file=args.key_file,
        stable_after=args.stable_after,
    )
    with supervisor:
        if args.listen_base is not None:
            print("supervised workers listening at: " + ",".join(supervisor.addresses), flush=True)
        if args.status_port is not None:
            host, port = supervisor.serve_status(port=args.status_port)
            print(f"supervisor status on http://{host}:{port}/status", flush=True)
        print(
            f"supervising {args.target} genlogic worker processes (Ctrl-C to stop)",
            flush=True,
        )
        try:
            while True:
                time.sleep(1.0)
        except KeyboardInterrupt:
            pass
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    import ipaddress
    import socket

    from .engine.auth import resolve_key
    from .service import AnalysisService, serve as service_serve

    _validate_workers(args)
    secret = resolve_key(key_file=args.key_file)
    # The service speaks plaintext HTTP and trusts its clients, exactly like
    # an unkeyed worker fabric (see the trust model in
    # repro/engine/distributed.py).  A configured fabric key is the
    # operator's explicit opt-in to leaving loopback: it authenticates the
    # worker fabric underneath, and says they have read the security notes
    # (front the HTTP side with an authenticating reverse proxy).
    try:
        loopback = ipaddress.ip_address(args.host).is_loopback
    except ValueError:
        try:
            loopback = ipaddress.ip_address(socket.gethostbyname(args.host)).is_loopback
        except OSError:
            loopback = False
    if not loopback and secret is None:
        raise ReproError(
            f"refusing to bind {args.host!r}: genlogic serve is loopback-only "
            "without a fabric key (--key-file or GENLOGIC_FABRIC_KEY); see "
            "the trust model in repro/engine/distributed.py and front the "
            "HTTP side with an authenticating reverse proxy",
        )
    if args.max_inflight < 1:
        raise ReproError("--max-inflight must be at least 1")
    if args.max_replicates < 1:
        raise ReproError("--max-replicates must be at least 1")
    if args.max_search_replicates < 1:
        raise ReproError("--max-search-replicates must be at least 1")
    if args.cache_bytes < 0:
        raise ReproError("--cache-bytes must be non-negative")
    if args.supervise is not None and args.dispatch is not None:
        raise ReproError("--supervise and --dispatch are mutually exclusive")
    if args.supervise is not None and args.supervise < 1:
        raise ReproError("--supervise needs at least one worker")

    executor = None
    supervisor = None
    if args.dispatch is not None:
        executor = DistributedEnsembleExecutor(
            connect=parse_dispatch_spec(args.dispatch),
            key=secret,
        )
    elif args.supervise is not None:
        from .engine.supervisor import WorkerSupervisor

        # The executor listens on an ephemeral loopback port; the supervisor
        # polls bound_address (None until the first study opens the fabric)
        # and keeps N auto-restarting workers dialed into it.
        executor = DistributedEnsembleExecutor(
            listen="127.0.0.1:0",
            min_workers=args.supervise,
            key=secret,
        )
        supervisor = WorkerSupervisor(
            args.supervise,
            connect=lambda: (
                "{}:{}".format(*executor.bound_address) if executor.bound_address else None
            ),
            key=secret,
        )
        supervisor.attach_executor(executor)
        supervisor.start()
    service = AnalysisService(
        workers=args.workers,
        executor=executor,
        supervisor=supervisor,
        max_inflight=args.max_inflight,
        max_replicates=args.max_replicates,
        max_search_replicates=args.max_search_replicates,
        cache_bytes=args.cache_bytes,
    )

    def _ready(address) -> None:
        host, port = address
        print(f"genlogic service listening on http://{host}:{port}", flush=True)

    try:
        service_serve(host=args.host, port=args.port, service=service, ready=_ready)
    finally:
        if supervisor is not None:
            supervisor.stop()
        if executor is not None:
            executor.close()
    return 0


_COMMANDS = {
    "list": _command_list,
    "simulate": _command_simulate,
    "analyze": _command_analyze,
    "verify": _command_verify,
    "synth": _command_synth,
    "search": _command_search,
    "runtime": _command_runtime,
    "worker": _command_worker,
    "supervisor": _command_supervisor,
    "serve": _command_serve,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``genlogic`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
