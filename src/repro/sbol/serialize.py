"""XML serialization of SBOL documents.

Cello hands designers an SBOL *file*; the paper's flow then converts that
file to SBML.  To support the same file-based hand-off, this module writes
and reads a compact XML representation of :class:`SBOLDocument` — not the
full SBOL 2 RDF/XML serialization (which would pull in an RDF stack), but a
faithful structural subset (components with roles and properties,
transcriptional units, interactions with participations) that round-trips
through :func:`read_sbol_string` and feeds straight into
:func:`repro.sbol.converter.sbol_to_sbml`.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from xml.sax.saxutils import quoteattr

from ..errors import SBOLParseError
from .document import SBOLDocument
from .parts import ComponentDefinition

__all__ = ["write_sbol_string", "write_sbol_file", "read_sbol_string", "read_sbol_file"]

SBOL_NS = "https://repro.example/sbol-subset/v1"


def _strip(tag: str) -> str:
    return tag.split("}")[-1]


def write_sbol_string(document: SBOLDocument) -> str:
    """Render an SBOL document as XML."""
    lines = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        f'<sbolDocument xmlns="{SBOL_NS}" displayId={quoteattr(document.display_id)} '
        f"name={quoteattr(document.name)}>",
        "  <listOfComponents>",
    ]
    for component in document.components.values():
        attributes = (
            f"displayId={quoteattr(component.display_id)} role={quoteattr(component.role)} "
            f"name={quoteattr(component.name)}"
        )
        if component.description:
            attributes += f" description={quoteattr(component.description)}"
        if component.sequence:
            attributes += f" sequence={quoteattr(component.sequence)}"
        if component.properties:
            lines.append(f"    <component {attributes}>")
            for key, value in component.properties.items():
                lines.append(
                    f"      <property name={quoteattr(key)} value={quoteattr(repr(float(value)))}/>",
                )
            lines.append("    </component>")
        else:
            lines.append(f"    <component {attributes}/>")
    lines.append("  </listOfComponents>")

    lines.append("  <listOfTranscriptionalUnits>")
    for unit in document.units.values():
        lines.append(f"    <transcriptionalUnit displayId={quoteattr(unit.display_id)}>")
        for part in unit.parts:
            lines.append(f"      <part component={quoteattr(part)}/>")
        lines.append("    </transcriptionalUnit>")
    lines.append("  </listOfTranscriptionalUnits>")

    lines.append("  <listOfInteractions>")
    for interaction in document.interactions.values():
        lines.append(
            f"    <interaction displayId={quoteattr(interaction.display_id)} "
            f"type={quoteattr(interaction.interaction_type)}>",
        )
        for participation in interaction.participations:
            lines.append(
                f"      <participation role={quoteattr(participation.role)} "
                f"participant={quoteattr(participation.participant)}/>",
            )
        lines.append("    </interaction>")
    lines.append("  </listOfInteractions>")
    lines.append("</sbolDocument>")
    return "\n".join(lines) + "\n"


def write_sbol_file(document: SBOLDocument, path) -> None:
    """Write an SBOL document to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_sbol_string(document))


def read_sbol_string(text: str) -> SBOLDocument:
    """Parse an XML string produced by :func:`write_sbol_string`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise SBOLParseError(f"malformed SBOL XML: {exc}") from exc
    if _strip(root.tag) != "sbolDocument":
        raise SBOLParseError(
            f"expected <sbolDocument> root element, got <{_strip(root.tag)}>",
        )
    document = SBOLDocument(
        root.get("displayId", "design"),
        name=root.get("name", ""),
    )

    components = None
    units = None
    interactions = None
    for child in root:
        tag = _strip(child.tag)
        if tag == "listOfComponents":
            components = child
        elif tag == "listOfTranscriptionalUnits":
            units = child
        elif tag == "listOfInteractions":
            interactions = child

    if components is not None:
        for element in components:
            if _strip(element.tag) != "component":
                continue
            display_id = element.get("displayId")
            role = element.get("role")
            if not display_id or not role:
                raise SBOLParseError("component element missing displayId or role")
            properties = {}
            for prop in element:
                if _strip(prop.tag) == "property":
                    properties[prop.get("name", "")] = float(prop.get("value", "0"))
            document.add_component(
                ComponentDefinition(
                    display_id,
                    role,
                    name=element.get("name", ""),
                    description=element.get("description", ""),
                    sequence=element.get("sequence"),
                    properties=properties,
                ),
            )

    if units is not None:
        for element in units:
            if _strip(element.tag) != "transcriptionalUnit":
                continue
            display_id = element.get("displayId")
            if not display_id:
                raise SBOLParseError("transcriptionalUnit element missing displayId")
            parts = [
                part.get("component", "")
                for part in element
                if _strip(part.tag) == "part"
            ]
            document.add_unit(display_id, parts)

    if interactions is not None:
        for element in interactions:
            if _strip(element.tag) != "interaction":
                continue
            display_id = element.get("displayId")
            interaction_type = element.get("type")
            if not display_id or not interaction_type:
                raise SBOLParseError("interaction element missing displayId or type")
            participations = [
                (part.get("role", ""), part.get("participant", ""))
                for part in element
                if _strip(part.tag) == "participation"
            ]
            document.add_interaction(display_id, interaction_type, participations)

    return document


def read_sbol_file(path) -> SBOLDocument:
    """Read an SBOL document from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return read_sbol_string(handle.read())
