"""SBOL-like structural designs and the SBOL→SBML converter.

Mirrors the paper's tool flow: Cello emits SBOL (structure only); the
SBOL→SBML converter adds kinetics so the circuit can be simulated.
"""

from .converter import ConversionParameters, sbol_to_sbml
from .document import Interaction, Participation, SBOLDocument, TranscriptionalUnit
from .serialize import (
    read_sbol_file,
    read_sbol_string,
    write_sbol_file,
    write_sbol_string,
)
from .parts import (
    ComponentDefinition,
    InteractionType,
    ParticipationRole,
    Role,
    cds,
    promoter,
    protein,
    rbs,
    small_molecule,
    terminator,
)

__all__ = [
    "Role",
    "InteractionType",
    "ParticipationRole",
    "ComponentDefinition",
    "promoter",
    "rbs",
    "cds",
    "terminator",
    "protein",
    "small_molecule",
    "Participation",
    "Interaction",
    "TranscriptionalUnit",
    "SBOLDocument",
    "ConversionParameters",
    "sbol_to_sbml",
    "write_sbol_string",
    "write_sbol_file",
    "read_sbol_string",
    "read_sbol_file",
]
