"""SBOL-like design documents: transcriptional units and interactions.

A :class:`SBOLDocument` captures what Cello emits for a genetic circuit: the
DNA parts, the proteins, how the parts are grouped into transcriptional units
(promoters → RBS → CDS → terminator) and the regulatory interactions between
proteins and promoters.  It deliberately stores *no kinetics* — that is the
job of the SBOL→SBML converter, matching the paper's observation that "unlike
SBML, the SBOL representation does not describe the behavior of a biological
model".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import DuplicateIdError, ModelError, UnknownIdError
from .parts import ComponentDefinition, InteractionType, ParticipationRole, Role

__all__ = ["Participation", "Interaction", "TranscriptionalUnit", "SBOLDocument"]


@dataclass(frozen=True)
class Participation:
    """One participant of an interaction: a component playing a role."""

    role: str
    participant: str

    def __post_init__(self) -> None:
        if self.role not in ParticipationRole.ALL:
            raise ModelError(f"unknown participation role {self.role!r}")


@dataclass
class Interaction:
    """A regulatory or production interaction between components."""

    display_id: str
    interaction_type: str
    participations: List[Participation] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.interaction_type not in InteractionType.ALL:
            raise ModelError(
                f"interaction {self.display_id!r} has unknown type "
                f"{self.interaction_type!r}",
            )
        self.participations = list(self.participations)

    def participants_with_role(self, role: str) -> List[str]:
        """Display ids of every participant playing ``role``."""
        return [p.participant for p in self.participations if p.role == role]


@dataclass
class TranscriptionalUnit:
    """An ordered run of DNA parts transcribed together.

    ``parts`` lists component display ids 5'→3'.  A unit may carry several
    promoters in tandem (the structure used by Cello NOR gates and by the
    genetic AND gate of the paper's Figure 1, where P1 and P2 both drive CI).
    """

    display_id: str
    parts: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.parts:
            raise ModelError(f"transcriptional unit {self.display_id!r} has no parts")
        self.parts = list(self.parts)


class SBOLDocument:
    """A complete structural description of a genetic circuit."""

    def __init__(self, display_id: str = "design", name: str = ""):
        self.display_id = display_id
        self.name = name or display_id
        self.components: Dict[str, ComponentDefinition] = {}
        self.units: Dict[str, TranscriptionalUnit] = {}
        self.interactions: Dict[str, Interaction] = {}

    # -- construction ---------------------------------------------------------
    def add_component(self, component: ComponentDefinition) -> ComponentDefinition:
        if component.display_id in self.components:
            raise DuplicateIdError("component", component.display_id)
        self.components[component.display_id] = component
        return component

    def add_components(self, components: Iterable[ComponentDefinition]) -> None:
        for component in components:
            self.add_component(component)

    def ensure_component(self, component: ComponentDefinition) -> ComponentDefinition:
        """Add the component unless one with the same id already exists."""
        existing = self.components.get(component.display_id)
        if existing is not None:
            if existing.role != component.role:
                raise ModelError(
                    f"component {component.display_id!r} already exists with role "
                    f"{existing.role!r}, cannot redefine as {component.role!r}",
                )
            return existing
        return self.add_component(component)

    def add_unit(self, display_id: str, parts: Sequence[str]) -> TranscriptionalUnit:
        if display_id in self.units:
            raise DuplicateIdError("transcriptional unit", display_id)
        for part in parts:
            component = self._get(part)
            if not component.is_dna:
                raise ModelError(
                    f"transcriptional unit {display_id!r} includes {part!r}, "
                    f"which is not a DNA part",
                )
        unit = TranscriptionalUnit(display_id, list(parts))
        self.units[display_id] = unit
        return unit

    def add_interaction(
        self,
        display_id: str,
        interaction_type: str,
        participations: Sequence[Tuple[str, str]],
    ) -> Interaction:
        """Add an interaction; ``participations`` is a list of (role, component)."""
        if display_id in self.interactions:
            raise DuplicateIdError("interaction", display_id)
        parts = []
        for role, participant in participations:
            self._get(participant)
            parts.append(Participation(role, participant))
        interaction = Interaction(display_id, interaction_type, parts)
        self.interactions[display_id] = interaction
        return interaction

    # -- convenience builders -------------------------------------------------
    def add_repression(self, repressor: str, promoter_id: str) -> Interaction:
        """Declare that ``repressor`` (a protein) represses ``promoter_id``."""
        self._require_role(repressor, Role.SPECIES_ROLES, "repressor")
        self._require_role(promoter_id, {Role.PROMOTER}, "repressed promoter")
        display_id = f"inh_{repressor}_{promoter_id}"
        return self.add_interaction(
            display_id,
            InteractionType.INHIBITION,
            [
                (ParticipationRole.INHIBITOR, repressor),
                (ParticipationRole.INHIBITED, promoter_id),
            ],
        )

    def add_activation(self, activator: str, promoter_id: str) -> Interaction:
        """Declare that ``activator`` (a protein) activates ``promoter_id``."""
        self._require_role(activator, Role.SPECIES_ROLES, "activator")
        self._require_role(promoter_id, {Role.PROMOTER}, "activated promoter")
        display_id = f"act_{activator}_{promoter_id}"
        return self.add_interaction(
            display_id,
            InteractionType.STIMULATION,
            [
                (ParticipationRole.STIMULATOR, activator),
                (ParticipationRole.STIMULATED, promoter_id),
            ],
        )

    def add_production(self, cds_id: str, product: str) -> Interaction:
        """Declare that ``cds_id`` codes for the protein ``product``."""
        self._require_role(cds_id, {Role.CDS}, "coding sequence")
        self._require_role(product, Role.SPECIES_ROLES, "product")
        display_id = f"prod_{cds_id}_{product}"
        return self.add_interaction(
            display_id,
            InteractionType.GENETIC_PRODUCTION,
            [
                (ParticipationRole.TEMPLATE, cds_id),
                (ParticipationRole.PRODUCT, product),
            ],
        )

    # -- queries --------------------------------------------------------------
    def _get(self, display_id: str) -> ComponentDefinition:
        try:
            return self.components[display_id]
        except KeyError:
            raise UnknownIdError("component", display_id) from None

    def _require_role(self, display_id: str, roles, what: str) -> None:
        component = self._get(display_id)
        if component.role not in roles:
            raise ModelError(
                f"{what} {display_id!r} has role {component.role!r}, expected one of "
                f"{sorted(roles)}",
            )

    def components_with_role(self, role: str) -> List[ComponentDefinition]:
        return [c for c in self.components.values() if c.role == role]

    def repressors_of(self, promoter_id: str) -> List[str]:
        """Proteins that repress ``promoter_id``."""
        result = []
        for interaction in self.interactions.values():
            if interaction.interaction_type != InteractionType.INHIBITION:
                continue
            if promoter_id in interaction.participants_with_role(ParticipationRole.INHIBITED):
                result.extend(interaction.participants_with_role(ParticipationRole.INHIBITOR))
        return result

    def activators_of(self, promoter_id: str) -> List[str]:
        """Proteins that activate ``promoter_id``."""
        result = []
        for interaction in self.interactions.values():
            if interaction.interaction_type != InteractionType.STIMULATION:
                continue
            if promoter_id in interaction.participants_with_role(ParticipationRole.STIMULATED):
                result.extend(interaction.participants_with_role(ParticipationRole.STIMULATOR))
        return result

    def product_of_cds(self, cds_id: str) -> Optional[str]:
        """The protein coded by ``cds_id``, if a production interaction declares it."""
        for interaction in self.interactions.values():
            if interaction.interaction_type != InteractionType.GENETIC_PRODUCTION:
                continue
            if cds_id in interaction.participants_with_role(ParticipationRole.TEMPLATE):
                products = interaction.participants_with_role(ParticipationRole.PRODUCT)
                if products:
                    return products[0]
        return None

    def produced_species(self) -> List[str]:
        """All species produced by some transcriptional unit in the design."""
        produced = []
        for unit in self.units.values():
            for part in unit.parts:
                if self.components[part].role == Role.CDS:
                    product = self.product_of_cds(part)
                    if product and product not in produced:
                        produced.append(product)
        return produced

    def input_species(self) -> List[str]:
        """Species that regulate promoters but are never produced — circuit inputs."""
        produced = set(self.produced_species())
        inputs: List[str] = []
        for component in self.components.values():
            if not component.is_species or component.display_id in produced:
                continue
            regulates = False
            for interaction in self.interactions.values():
                if interaction.interaction_type in (
                    InteractionType.INHIBITION,
                    InteractionType.STIMULATION,
                ):
                    actors = interaction.participants_with_role(
                        ParticipationRole.INHIBITOR,
                    ) + interaction.participants_with_role(ParticipationRole.STIMULATOR)
                    if component.display_id in actors:
                        regulates = True
                        break
            if regulates:
                inputs.append(component.display_id)
        return inputs

    def genetic_component_count(self) -> int:
        """Number of DNA parts in the design (the paper's "genetic components")."""
        return sum(1 for c in self.components.values() if c.is_dna)

    def validate(self) -> List[str]:
        """Structural checks; returns a list of problems (empty when valid)."""
        problems: List[str] = []
        if not self.units:
            problems.append("document has no transcriptional units")
        for unit in self.units.values():
            roles = [self.components[p].role for p in unit.parts]
            if Role.PROMOTER not in roles:
                problems.append(f"unit {unit.display_id!r} has no promoter")
            if Role.CDS not in roles:
                problems.append(f"unit {unit.display_id!r} has no coding sequence")
            if roles and roles[-1] != Role.TERMINATOR:
                problems.append(f"unit {unit.display_id!r} does not end with a terminator")
            for part in unit.parts:
                if self.components[part].role == Role.CDS and self.product_of_cds(part) is None:
                    problems.append(
                        f"coding sequence {part!r} in unit {unit.display_id!r} has no "
                        "declared protein product",
                    )
        return problems

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"SBOLDocument({self.display_id!r}, components={len(self.components)}, "
            f"units={len(self.units)}, interactions={len(self.interactions)})"
        )
