"""SBOL → SBML conversion (the Roehner et al. 2015 step of the paper's flow).

Cello emits structural SBOL; the paper converts it to behavioural SBML before
simulating in D-VASim.  This converter performs the same job for our SBOL
subset:

* every transcriptional unit contributes one *regulated production* reaction
  per coded protein, whose rate sums the activity of the unit's (possibly
  tandem) promoters,
* each promoter's activity is its maximal strength multiplied by a Hill
  repression factor per repressor and a Hill activation factor per activator,
* every produced protein gets a first-order degradation/dilution reaction,
* species that regulate promoters but are never produced become boundary
  (input) species that the virtual laboratory clamps.

The kinetic constants come from :class:`ConversionParameters`; individual
promoters and proteins can override them through their ``properties`` dict
(keys ``strength``, ``K``, ``n``, ``degradation``), which is how the gate
parts library injects per-repressor response functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ConversionError
from ..sbml.model import Model
from .document import SBOLDocument
from .parts import Role

__all__ = ["ConversionParameters", "sbol_to_sbml"]


@dataclass
class ConversionParameters:
    """Default kinetic constants used when a part does not override them.

    Attributes
    ----------
    promoter_strength:
        Maximal production rate of a fully active promoter (molecules per
        time unit).
    repression_coefficient:
        Hill K of repression — the repressor amount at which a promoter is at
        half activity.
    hill_coefficient:
        Hill cooperativity n for both repression and activation.
    degradation_rate:
        First-order degradation/dilution rate of produced proteins.
    leak_fraction:
        Fraction of ``promoter_strength`` produced even when the promoter is
        fully repressed (transcriptional leakage).
    """

    promoter_strength: float = 4.0
    repression_coefficient: float = 10.0
    hill_coefficient: float = 2.5
    degradation_rate: float = 0.1
    leak_fraction: float = 0.01

    def __post_init__(self) -> None:
        if self.promoter_strength <= 0:
            raise ConversionError("promoter_strength must be positive")
        if self.repression_coefficient <= 0:
            raise ConversionError("repression_coefficient must be positive")
        if self.hill_coefficient <= 0:
            raise ConversionError("hill_coefficient must be positive")
        if self.degradation_rate <= 0:
            raise ConversionError("degradation_rate must be positive")
        if not 0 <= self.leak_fraction < 1:
            raise ConversionError("leak_fraction must be in [0, 1)")


def _promoter_activity_expression(
    document: SBOLDocument,
    promoter_id: str,
    parameters: ConversionParameters,
    parameter_prefix: str,
    model: Model,
) -> str:
    """Infix expression for the activity (rate contribution) of one promoter."""
    promoter = document.components[promoter_id]
    strength = float(promoter.properties.get("strength", parameters.promoter_strength))
    leak = float(promoter.properties.get("leak", parameters.leak_fraction))
    hill_n = float(promoter.properties.get("n", parameters.hill_coefficient))
    hill_k = float(promoter.properties.get("K", parameters.repression_coefficient))

    strength_id = f"{parameter_prefix}_kmax"
    model.add_parameter(strength_id, strength, name=f"max strength of {promoter_id}")
    factors: List[str] = []

    repressors = document.repressors_of(promoter_id)
    activators = document.activators_of(promoter_id)
    for index, repressor in enumerate(repressors):
        k_id = f"{parameter_prefix}_K{index}"
        n_id = f"{parameter_prefix}_n{index}"
        rep_component = document.components[repressor]
        model.add_parameter(
            k_id,
            float(rep_component.properties.get("K", hill_k)),
            name=f"repression K of {repressor} on {promoter_id}",
        )
        model.add_parameter(
            n_id,
            float(rep_component.properties.get("n", hill_n)),
            name=f"Hill n of {repressor} on {promoter_id}",
        )
        factors.append(f"hill_rep({repressor}, {k_id}, {n_id})")
    for index, activator in enumerate(activators):
        k_id = f"{parameter_prefix}_KA{index}"
        n_id = f"{parameter_prefix}_nA{index}"
        act_component = document.components[activator]
        model.add_parameter(
            k_id,
            float(act_component.properties.get("K", hill_k)),
            name=f"activation K of {activator} on {promoter_id}",
        )
        model.add_parameter(
            n_id,
            float(act_component.properties.get("n", hill_n)),
            name=f"Hill n of {activator} on {promoter_id}",
        )
        factors.append(f"hill_act({activator}, {k_id}, {n_id})")

    if not factors:
        # Constitutive promoter: always at full strength.
        return strength_id

    regulated = f"{strength_id} * " + " * ".join(factors)
    if leak > 0:
        leak_id = f"{parameter_prefix}_leak"
        model.add_parameter(leak_id, leak * strength, name=f"leak of {promoter_id}")
        return f"({regulated} + {leak_id})"
    return f"({regulated})"


def sbol_to_sbml(
    document: SBOLDocument,
    parameters: Optional[ConversionParameters] = None,
    model_id: Optional[str] = None,
    input_amounts: Optional[Dict[str, float]] = None,
) -> Model:
    """Convert an SBOL design into a behavioural SBML :class:`Model`.

    Parameters
    ----------
    document:
        The structural design to convert.
    parameters:
        Default kinetic constants (see :class:`ConversionParameters`).
    model_id:
        Identifier for the generated model (defaults to the document id).
    input_amounts:
        Optional initial amounts for the circuit's input species; they default
        to zero and are always marked as boundary species.
    """
    parameters = parameters or ConversionParameters()
    problems = document.validate()
    if problems:
        raise ConversionError(
            "cannot convert an invalid SBOL document:\n"
            + "\n".join(f"  - {p}" for p in problems),
        )

    model = Model(model_id or document.display_id, name=document.name)
    model.add_compartment("cell")
    model.notes = (
        f"Generated from SBOL design {document.display_id!r} by repro.sbol.converter."
    )

    produced = document.produced_species()
    inputs = document.input_species()
    input_amounts = dict(input_amounts or {})

    # Input species first (boundary condition: the virtual lab clamps them).
    for sid in inputs:
        model.add_species(
            sid,
            initial_amount=float(input_amounts.get(sid, 0.0)),
            boundary_condition=True,
            name=document.components[sid].name,
        )
    # Produced species.
    for sid in produced:
        if sid in model.species:
            raise ConversionError(f"species {sid!r} is both an input and produced")
        model.add_species(sid, initial_amount=0.0, name=document.components[sid].name)
    # Species that participate but neither regulate nor are produced (rare).
    for component in document.components.values():
        if component.is_species and component.display_id not in model.species:
            model.add_species(
                component.display_id,
                initial_amount=float(input_amounts.get(component.display_id, 0.0)),
                boundary_condition=True,
                name=component.name,
            )

    # One production reaction per (unit, coded protein).
    for unit in document.units.values():
        promoters = [p for p in unit.parts if document.components[p].role == Role.PROMOTER]
        cds_list = [p for p in unit.parts if document.components[p].role == Role.CDS]
        if not promoters or not cds_list:
            raise ConversionError(
                f"unit {unit.display_id!r} lacks a promoter or coding sequence",
            )
        for cds_id in cds_list:
            product = document.product_of_cds(cds_id)
            if product is None:
                raise ConversionError(
                    f"coding sequence {cds_id!r} has no declared protein product",
                )
            terms = []
            for p_index, promoter_id in enumerate(promoters):
                prefix = f"{unit.display_id}_{cds_id}_p{p_index}"
                terms.append(
                    _promoter_activity_expression(
                        document,
                        promoter_id,
                        parameters,
                        prefix,
                        model,
                    ),
                )
            rate = " + ".join(terms)
            model.add_reaction(
                f"production_{unit.display_id}_{product}",
                reactants=[],
                products=[(product, 1.0)],
                modifiers=[
                    s
                    for promoter_id in promoters
                    for s in (
                        document.repressors_of(promoter_id)
                        + document.activators_of(promoter_id)
                    )
                    if s in model.species
                ],
                kinetic_law=rate,
                name=f"production of {product} from {unit.display_id}",
            )

    # First-order degradation for every produced protein.
    for sid in produced:
        component = document.components[sid]
        rate_value = float(component.properties.get("degradation", parameters.degradation_rate))
        rate_id = f"kd_{sid}"
        model.add_parameter(rate_id, rate_value, name=f"degradation rate of {sid}")
        model.add_reaction(
            f"degradation_{sid}",
            reactants=[(sid, 1.0)],
            products=[],
            kinetic_law=f"{rate_id} * {sid}",
            name=f"degradation of {sid}",
        )

    return model
