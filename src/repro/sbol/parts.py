"""SBOL-like genetic part definitions.

The Synthetic Biology Open Language (SBOL) describes the *structure* of a
genetic design: which DNA parts (promoters, ribosome binding sites, coding
sequences, terminators) make up each transcriptional unit and which proteins
interact with which promoters.  Cello — the design tool the paper's circuits
come from — emits SBOL; the paper then converts SBOL to SBML to obtain a
*behavioural* model it can simulate.

This module defines the structural vocabulary used by
:mod:`repro.sbol.document` and the SBOL→SBML converter.  Role and interaction
identifiers follow the Sequence Ontology / Systems Biology Ontology terms the
real SBOL specification uses, abbreviated to readable constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import ModelError
from ..sbml.model import is_valid_sid

__all__ = [
    "Role",
    "InteractionType",
    "ParticipationRole",
    "ComponentDefinition",
    "promoter",
    "rbs",
    "cds",
    "terminator",
    "protein",
    "small_molecule",
]


class Role:
    """Structural roles of component definitions (Sequence Ontology terms)."""

    PROMOTER = "promoter"            # SO:0000167
    RBS = "rbs"                      # SO:0000139
    CDS = "cds"                      # SO:0000316
    TERMINATOR = "terminator"        # SO:0000141
    ENGINEERED_REGION = "engineered_region"  # SO:0000804
    PROTEIN = "protein"              # functional component, not DNA
    SMALL_MOLECULE = "small_molecule"

    DNA_ROLES = frozenset({PROMOTER, RBS, CDS, TERMINATOR, ENGINEERED_REGION})
    SPECIES_ROLES = frozenset({PROTEIN, SMALL_MOLECULE})

    ALL = DNA_ROLES | SPECIES_ROLES


class InteractionType:
    """Interaction types (Systems Biology Ontology terms)."""

    INHIBITION = "inhibition"                # SBO:0000169
    STIMULATION = "stimulation"              # SBO:0000170
    GENETIC_PRODUCTION = "genetic_production"  # SBO:0000589
    DEGRADATION = "degradation"              # SBO:0000179

    ALL = frozenset({INHIBITION, STIMULATION, GENETIC_PRODUCTION, DEGRADATION})


class ParticipationRole:
    """Roles a participant plays inside an interaction."""

    INHIBITOR = "inhibitor"      # SBO:0000020
    INHIBITED = "inhibited"      # SBO:0000642 (the promoter being repressed)
    STIMULATOR = "stimulator"    # SBO:0000459
    STIMULATED = "stimulated"    # SBO:0000643
    TEMPLATE = "template"        # SBO:0000645 (the CDS transcribed)
    PRODUCT = "product"          # SBO:0000011 (the protein produced)
    REACTANT = "reactant"        # SBO:0000010 (degraded species)

    ALL = frozenset(
        {INHIBITOR, INHIBITED, STIMULATOR, STIMULATED, TEMPLATE, PRODUCT, REACTANT},
    )


@dataclass
class ComponentDefinition:
    """A genetic part or molecular species referenced by a design.

    ``display_id`` doubles as the SBML species / element identifier after
    conversion, so it must be a valid SBML SId.
    """

    display_id: str
    role: str
    name: str = ""
    description: str = ""
    sequence: Optional[str] = None
    properties: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not is_valid_sid(self.display_id):
            raise ModelError(
                f"component display_id {self.display_id!r} is not a valid identifier",
            )
        if self.role not in Role.ALL:
            raise ModelError(
                f"component {self.display_id!r} has unknown role {self.role!r}",
            )
        if not self.name:
            self.name = self.display_id
        if self.sequence is not None:
            sequence = self.sequence.strip().lower()
            if sequence and not set(sequence) <= set("acgtn"):
                raise ModelError(
                    f"component {self.display_id!r} has a non-DNA sequence",
                )
            self.sequence = sequence

    @property
    def is_dna(self) -> bool:
        """True if the component is a DNA part (promoter, RBS, CDS, ...)."""
        return self.role in Role.DNA_ROLES

    @property
    def is_species(self) -> bool:
        """True if the component is a molecular species (protein, small molecule)."""
        return self.role in Role.SPECIES_ROLES


def promoter(display_id: str, name: str = "", **properties: float) -> ComponentDefinition:
    """Shorthand constructor for a promoter part."""
    return ComponentDefinition(display_id, Role.PROMOTER, name=name, properties=dict(properties))


def rbs(display_id: str, name: str = "", **properties: float) -> ComponentDefinition:
    """Shorthand constructor for a ribosome-binding-site part."""
    return ComponentDefinition(display_id, Role.RBS, name=name, properties=dict(properties))


def cds(display_id: str, name: str = "", **properties: float) -> ComponentDefinition:
    """Shorthand constructor for a coding-sequence part."""
    return ComponentDefinition(display_id, Role.CDS, name=name, properties=dict(properties))


def terminator(display_id: str, name: str = "", **properties: float) -> ComponentDefinition:
    """Shorthand constructor for a terminator part."""
    return ComponentDefinition(display_id, Role.TERMINATOR, name=name, properties=dict(properties))


def protein(display_id: str, name: str = "", **properties: float) -> ComponentDefinition:
    """Shorthand constructor for a protein species."""
    return ComponentDefinition(display_id, Role.PROTEIN, name=name, properties=dict(properties))


def small_molecule(display_id: str, name: str = "", **properties: float) -> ComponentDefinition:
    """Shorthand constructor for a small-molecule species (inducer)."""
    return ComponentDefinition(
        display_id,
        Role.SMALL_MOLECULE,
        name=name,
        properties=dict(properties),
    )
