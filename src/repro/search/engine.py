"""The design-space search engine: enumerate → simulate → score → rank.

:func:`run_design_search` evaluates every candidate part assignment of a
Boolean function (repressor permutations × variant overrides, from
:func:`repro.gates.enumerate_assignments`) and returns a ranked
:class:`SearchFrontier`.  Replicates are allocated by the spec's policy:

* ``"fixed"`` — every candidate gets exactly ``fixed_replicates``; the
  exhaustive baseline.
* ``"racing"`` (successive halving) — every candidate starts at ``n0``
  replicates; each round, the frontier cut is placed between rank ``top_k``
  and rank ``top_k + 1``, and only candidates whose confidence interval
  still overlaps the ambiguity band ``[ci_lo(rank k), ci_hi(rank k+1)]``
  receive another ``refine_step`` replicates (up to ``fixed_replicates``
  each, never beyond ``budget_replicates`` total).  Clearly-in and
  clearly-out candidates stop consuming budget, so the total replicate count
  grows sublinearly with the candidate count.

Determinism is bit-exact at any ``workers=`` / ``batch_size=`` and on any
backend (serial, process pool, distributed fabric):

* every candidate owns one child :class:`~numpy.random.SeedSequence` spawned
  from the spec seed, and each refinement batch spawns *its* next children in
  order — so candidate ``i``'s replicate ``j`` has the same seed whether it
  was scheduled in round 1 or round 5, and the racing replicates are a
  prefix of the fixed-N replicates for the same spec;
* each round is one flat :func:`repro.engine.run_ensemble` call whose
  reducer output is assembled by job index, and replicate analyses land in
  explicit :class:`~repro.analysis.CandidateScore` slots — aggregation order
  never depends on completion order;
* ranking and the band test are pure functions of the slot-ordered scores.

Hence the same spec yields the same frontier everywhere, and the frontier
payload (minus its ``engine`` timing block) is content-addressable under
:meth:`SearchSpec.cache_key`.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..analysis.scoring import CandidateScore
from ..core.analyzer import LogicAnalyzer
from ..engine.api import replicate_jobs, run_ensemble
from ..engine.executors import get_executor
from ..errors import EngineError
from ..gates.assignment import PartAssignment
from ..gates.circuits import build_circuit
from ..vlab.experiment import LogicExperiment
from .spec import SearchSpec

__all__ = [
    "FrontierEntry",
    "SearchFrontier",
    "run_design_search",
    "arun_design_search",
]


@dataclass
class FrontierEntry:
    """One ranked candidate: its part assignment plus aggregated score."""

    rank: int
    candidate: PartAssignment
    score: CandidateScore
    ci_level: float

    @property
    def mean_design_fitness(self) -> float:
        return self.score.mean_design_fitness

    @property
    def n_replicates(self) -> int:
        return self.score.n_replicates

    def design_ci(self) -> Tuple[float, float]:
        return self.score.design_ci(self.ci_level)

    def to_dict(self) -> Dict[str, Any]:
        lo, hi = self.design_ci()
        payload: Dict[str, Any] = {
            "rank": self.rank,
            "candidate": self.candidate.to_dict(),
            "label": self.candidate.label(),
            "ci_level": self.ci_level,
            "design_ci": [lo, hi],
        }
        payload.update(self.score.to_payload())
        return payload

    def summary(self) -> str:
        return (
            f"{self.rank}. {self.candidate.label()}: design fitness "
            f"{self.score.mean_design_fitness:.2f}% "
            f"(raw {self.score.mean_fitness:.2f} ± {self.score.std_fitness:.2f}, "
            f"n={self.score.n_replicates}, "
            f"margin={self.score.worst_combination_margin():.2f})"
        )


@dataclass
class SearchFrontier:
    """The ranked outcome of one design-space search.

    ``entries`` covers *every* evaluated candidate in rank order (rank 1 is
    best); :meth:`top` slices the frontier the allocator separated.  The
    ranking key is ``(-mean_design_fitness, -worst_combination_margin,
    enumeration index)`` — correctness-weighted fitness first (see
    :attr:`repro.analysis.CandidateScore.design_values`), robustness breaking
    ties, enumeration order making the ranking total and deterministic.
    """

    spec: SearchSpec
    entries: List[FrontierEntry]
    total_replicates: int
    rounds: int
    #: Aggregated execution statistics (timing, cache counters).  Excluded
    #: from result identity: two runs of the same spec on different backends
    #: produce equal payloads apart from this block.
    engine_stats: Optional[Dict[str, Any]] = field(default=None, repr=False)

    @property
    def n_candidates(self) -> int:
        return len(self.entries)

    @property
    def exhaustive_replicates(self) -> int:
        """What the fixed-N baseline would have cost on this space."""
        return self.n_candidates * self.spec.fixed_replicates

    @property
    def replicates_fraction(self) -> float:
        """Fraction of the exhaustive cost actually spent (≤ 1.0)."""
        exhaustive = self.exhaustive_replicates
        if exhaustive <= 0:
            return 0.0
        return self.total_replicates / exhaustive

    def top(self, k: Optional[int] = None) -> List[FrontierEntry]:
        """The best ``k`` entries (default: the spec's ``top_k``)."""
        return self.entries[: self.spec.top_k if k is None else k]

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready frontier (the ``POST /v1/search`` result shape).

        Everything except the ``engine`` block is a pure function of the
        spec, so payloads from different backends/worker counts compare
        equal field-for-field apart from ``engine`` — the property the
        service's content-addressed cache relies on.
        """
        payload: Dict[str, Any] = {
            "function": self.spec.function.lower(),
            "allocator": self.spec.allocator,
            "n_candidates": self.n_candidates,
            "top_k": self.spec.top_k,
            "total_replicates": self.total_replicates,
            "exhaustive_replicates": self.exhaustive_replicates,
            "replicates_fraction": self.replicates_fraction,
            "rounds": self.rounds,
            "entries": [entry.to_dict() for entry in self.entries],
            "spec": self.spec.to_dict(),
        }
        if self.engine_stats is not None:
            payload["engine"] = dict(self.engine_stats)
        return payload

    def summary(self) -> str:
        header = (
            f"search {self.spec.function.lower()}: {self.n_candidates} candidates, "
            f"{self.total_replicates}/{self.exhaustive_replicates} replicates "
            f"({self.replicates_fraction * 100:.0f}% of exhaustive) in "
            f"{self.rounds} round(s) [{self.spec.allocator}]"
        )
        lines = [header]
        lines.extend(f"  {entry.summary()}" for entry in self.top())
        return "\n".join(lines)


def _as_search_spec(spec: Union[SearchSpec, Mapping, str, bytes]) -> SearchSpec:
    if isinstance(spec, SearchSpec):
        return spec
    if isinstance(spec, Mapping):
        return SearchSpec.from_dict(spec)
    if isinstance(spec, (str, bytes)):
        return SearchSpec.from_json(spec)
    raise EngineError(
        f"expected a SearchSpec, dict or JSON string, got {type(spec).__name__}",
    )


class _CandidateState:
    """Per-candidate execution state: job template, score, seed stream."""

    __slots__ = ("candidate", "experiment", "template", "score", "seed")

    def __init__(self, candidate, experiment, template, score, seed):
        self.candidate = candidate
        self.experiment = experiment
        self.template = template
        self.score = score
        self.seed = seed


def _build_states(spec: SearchSpec) -> List[_CandidateState]:
    """Materialize the candidate space into runnable per-candidate state.

    Candidates sharing a repressor permutation share one built circuit (and
    thus one compiled model downstream): variant overrides ride on the job,
    not in the model.  Each candidate gets its own child SeedSequence from
    the spec seed, spawned in enumeration order.
    """
    library = spec.parts()
    candidates = spec.candidates()
    if not candidates:
        raise EngineError(
            f"the search space of {spec.function!r} is empty (not enough "
            "repressors for the assignable gates?)",
        )
    root = np.random.SeedSequence(spec.seed)
    seeds = root.spawn(len(candidates))
    shared: Dict[Tuple, Tuple] = {}
    states: List[_CandidateState] = []
    for candidate, seed in zip(candidates, seeds):
        entry = shared.get(candidate.repressors)
        if entry is None:
            circuit = build_circuit(
                spec.netlist(),
                library,
                output_protein=spec.output_protein,
                assignment=candidate,
            )
            experiment = LogicExperiment.for_circuit(
                circuit,
                simulator=spec.simulator,
                sample_interval=spec.sample_interval,
            )
            entry = (circuit, experiment)
            shared[candidate.repressors] = entry
        circuit, experiment = entry
        template = experiment.job(
            hold_time=spec.hold_time,
            repeats=spec.repeats,
            overrides=dict(candidate.overrides) if candidate.overrides else None,
        )
        states.append(
            _CandidateState(
                candidate=candidate,
                experiment=experiment,
                template=template,
                score=CandidateScore(circuit.expected_table),
                seed=seed,
            ),
        )
    return states


def _rank(states: Sequence[_CandidateState]) -> List[int]:
    """Candidate indices best-first: design fitness, robustness, then index."""
    return sorted(
        range(len(states)),
        key=lambda i: (
            -states[i].score.mean_design_fitness,
            -states[i].score.worst_combination_margin(),
            i,
        ),
    )


def run_design_search(
    spec: Union[SearchSpec, Mapping, str, bytes],
    executor=None,
    progress=None,
) -> SearchFrontier:
    """Execute a design-space search and return its ranked frontier.

    Parameters
    ----------
    spec:
        A :class:`SearchSpec` (or its dict / JSON form).
    executor:
        An opened engine executor (serial, pool, or distributed fabric) to
        run every round's ensemble on; its lifecycle belongs to the caller.
        Without it, an ephemeral executor is built from ``spec.workers``.
    progress:
        Engine progress hook ``(done, total, job)``, called per completed
        replicate within each round.

    The frontier is bit-identical for the same spec on every backend and at
    any ``batch_size`` — see the module docstring for why.
    """
    spec = _as_search_spec(spec)
    states = _build_states(spec)
    n = len(states)
    budget = spec.total_budget()
    initial = spec.fixed_replicates if spec.allocator == "fixed" else spec.n0
    if budget < n * initial:
        raise EngineError(
            f"budget_replicates={budget} cannot fund the initial round: "
            f"{n} candidates x {initial} replicates = {n * initial}; raise "
            "the budget or cap the space with max_candidates",
        )
    analyzer = LogicAnalyzer(threshold=spec.threshold, fov_ud=spec.fov_ud)

    owns_executor = executor is None
    runner = executor if executor is not None else get_executor(spec.workers)
    total_replicates = 0
    rounds = 0
    wall_seconds = 0.0
    cache_hits = 0
    cache_misses = 0
    executor_name = None
    executor_workers = None

    def _run_round(allocation: Sequence[Tuple[int, int]]) -> None:
        """Simulate and score one ``(candidate index, n new replicates)`` batch."""
        nonlocal total_replicates, rounds, wall_seconds
        nonlocal cache_hits, cache_misses, executor_name, executor_workers
        jobs = []
        owner: List[int] = []
        slots: List[int] = []
        for index, extra in allocation:
            state = states[index]
            base = state.score.n_replicates
            # The per-candidate SeedSequence is stateful: each spawn continues
            # where the last round stopped, so replicate j's seed is the same
            # whichever round scheduled it.
            jobs.extend(replicate_jobs(state.template, extra, seed=state.seed))
            owner.extend([index] * extra)
            slots.extend(range(base, base + extra))

        def _analyze(job_index, job, trajectory):
            state = states[owner[job_index]]
            data = state.experiment.datalog_from(job, trajectory)
            return analyzer.analyze(data, expected=state.score.expected)

        ensemble = run_ensemble(
            jobs,
            executor=runner,
            progress=progress,
            reduce=_analyze,
            batch_size=spec.batch_size,
        )
        for job_index, result in enumerate(ensemble.reduced):
            states[owner[job_index]].score.add(result, slot=slots[job_index])
        total_replicates += len(jobs)
        rounds += 1
        stats = ensemble.stats
        wall_seconds += stats.wall_seconds
        cache_hits += stats.cache_hits
        cache_misses += stats.cache_misses
        executor_name = stats.executor
        executor_workers = stats.workers

    try:
        _run_round([(i, initial) for i in range(n)])
        if spec.allocator == "racing" and n > spec.top_k:
            cap = spec.fixed_replicates
            while True:
                order = _rank(states)
                kth = states[order[spec.top_k - 1]].score
                challenger = states[order[spec.top_k]].score
                band_lo = kth.design_ci(spec.ci_level)[0]
                band_hi = challenger.design_ci(spec.ci_level)[1]
                if band_lo > band_hi:
                    break  # the frontier cut is statistically separated
                remaining = budget - total_replicates
                if remaining <= 0:
                    break
                allocation: List[Tuple[int, int]] = []
                for index in order:  # best-ranked candidates refine first
                    score = states[index].score
                    if score.n_replicates >= cap:
                        continue
                    lo, hi = score.design_ci(spec.ci_level)
                    if hi < band_lo or lo > band_hi:
                        continue  # clearly outside the ambiguity band
                    extra = min(spec.refine_step, cap - score.n_replicates, remaining)
                    if extra <= 0:
                        continue
                    allocation.append((index, extra))
                    remaining -= extra
                    if remaining <= 0:
                        break
                if not allocation:
                    break  # every ambiguous candidate is at its cap
                _run_round(allocation)
    finally:
        if owns_executor:
            runner.close()

    order = _rank(states)
    entries = [
        FrontierEntry(
            rank=position + 1,
            candidate=states[index].candidate,
            score=states[index].score,
            ci_level=spec.ci_level,
        )
        for position, index in enumerate(order)
    ]
    engine_stats: Dict[str, Any] = {
        "executor": executor_name,
        "workers": executor_workers,
        "wall_seconds": wall_seconds,
        "replicates_per_second": (
            total_replicates / wall_seconds if wall_seconds > 0 else float("inf")
        ),
        "cache_hits": cache_hits,
        "cache_misses": cache_misses,
    }
    return SearchFrontier(
        spec=spec,
        entries=entries,
        total_replicates=total_replicates,
        rounds=rounds,
        engine_stats=engine_stats,
    )


async def arun_design_search(
    spec: Union[SearchSpec, Mapping, str, bytes],
    executor=None,
    progress=None,
) -> SearchFrontier:
    """Async entry point: :func:`run_design_search` off the event loop.

    Runs the blocking search on a worker thread via
    :func:`asyncio.to_thread`, mirroring
    :func:`repro.analysis.arun_replicate_study`; pass ``executor=`` to
    multiplex concurrent searches over one warm worker pool (e.g. the HTTP
    service's).
    """
    return await asyncio.to_thread(
        run_design_search,
        spec,
        executor=executor,
        progress=progress,
    )
