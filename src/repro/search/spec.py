"""The canonical design-space search request: :class:`SearchSpec`.

A search inverts the replicate study's question.  A study asks "how reliably
does *this* circuit compute its function"; a search asks "given a Boolean
*function*, which part assignment computes it best" — and ranks the whole
candidate space (repressor permutations × RBS/promoter variant overrides) by
(fitness, robustness).

Like :class:`~repro.engine.StudySpec`, the spec is frozen, canonical, JSON
round-trippable with a versioned schema, and content-addressable:
:meth:`cache_key` digests everything that determines the search *result* —
the function and inputs, the library name **and the resolved model content
of the first candidate** (so silently changed library kinetics or synthesis
rules change the key), the variant grid, the allocator policy and its
budgets, the analyzer configuration, the stimulus protocol and the seed.
Execution knobs (``workers``, ``batch_size``) are excluded: the engine runs
the same bits on every backend, and the search layer allocates replicates by
deterministic rules over those bits, so the frontier cannot depend on them.

The same spec is consumed identically by the Python API
(:func:`repro.search.run_design_search`), the CLI (``genlogic search``) and
the HTTP service (``POST /v1/search``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..engine.spec import frozen_overrides
from ..errors import EngineError
from ..gates.assignment import PartAssignment, count_assignments, enumerate_assignments
from ..gates.parts_library import LIBRARY_NAMES, PartsLibrary, resolve_library
from ..gates.synthesis import synthesize_from_hex
from ..stochastic import canonical_simulator_name

__all__ = ["SEARCH_SPEC_SCHEMA", "SearchSpec"]

#: Version of the SearchSpec wire schema.  Bump when a field is added,
#: removed or changes meaning; :meth:`SearchSpec.from_dict` rejects specs
#: from a *newer* schema instead of silently dropping fields.
SEARCH_SPEC_SCHEMA = 1

_ALLOCATORS = ("racing", "fixed")

_DEFAULT_INPUTS = ("LacI", "TetR", "AraC")


@dataclass(frozen=True)
class SearchSpec:
    """One design-space search, described declaratively and canonically.

    Parameters
    ----------
    function:
        Hexadecimal truth-table name of the target Boolean function
        (``"0x0B"``); the candidate netlist is synthesized from it.
    inputs:
        Input protein names, MSB→LSB of the combination index.
    output_protein:
        Reporter carried by the circuit output.
    library:
        Named parts library (see
        :func:`repro.gates.resolve_library`): ``"diverse"`` (default) gives
        every repressor distinct kinetics so permutations genuinely differ.
    variants:
        Grid of kinetic parameter-override sets (RBS/promoter variants), one
        frozen ``((name, value), ...)`` tuple per variant.  Each candidate is
        one repressor permutation × one variant; overrides apply at
        simulation time, so variants of a permutation share a compiled model.
    max_candidates:
        Cap on the enumerated candidate stream (None = the full space).
    allocator:
        ``"racing"`` (default): every candidate starts at ``n0`` replicates
        and only candidates whose confidence intervals still overlap the
        frontier cut receive further ``refine_step``-sized batches, up to
        ``fixed_replicates`` each — total replicates sublinear in the
        candidate count.  ``"fixed"``: every candidate gets exactly
        ``fixed_replicates`` (the exhaustive baseline).
    n0:
        Initial replicates per candidate (at least 2 — the overlap test
        needs a variance estimate).
    refine_step:
        Replicates added to each still-ambiguous candidate per racing round.
    fixed_replicates:
        Replicates per candidate under ``"fixed"``; per-candidate cap under
        ``"racing"`` (so racing can never spend more than fixed-N would).
    budget_replicates:
        Hard cap on total replicates across the search (None = the
        exhaustive total, ``n_candidates × fixed_replicates``).
    top_k:
        Size of the frontier the racing allocator separates (the cut lies
        between rank ``top_k`` and ``top_k + 1``).
    ci_level:
        Confidence level of the overlap test's intervals.
    threshold / fov_ud / hold_time / repeats / simulator / sample_interval / seed:
        Analyzer configuration and stimulus protocol, exactly as on
        :class:`~repro.engine.StudySpec`.  The seed roots the per-candidate
        ``SeedSequence`` fan-out; ``None`` draws fresh entropy (no cache key).
    workers / batch_size:
        Execution knobs — excluded from :meth:`cache_key`.
    """

    function: str
    inputs: Tuple[str, ...] = _DEFAULT_INPUTS
    output_protein: str = "YFP"
    library: str = "diverse"
    variants: Tuple[Tuple[Tuple[str, float], ...], ...] = ((),)
    max_candidates: Optional[int] = None
    allocator: str = "racing"
    n0: int = 3
    refine_step: int = 2
    fixed_replicates: int = 10
    budget_replicates: Optional[int] = None
    top_k: int = 5
    ci_level: float = 0.95
    threshold: float = 15.0
    fov_ud: float = 0.25
    hold_time: float = 200.0
    repeats: int = 1
    simulator: str = "ssa"
    sample_interval: float = 1.0
    seed: Optional[int] = None
    workers: int = 1
    batch_size: int = 1
    schema: int = SEARCH_SPEC_SCHEMA

    def __post_init__(self) -> None:
        if not isinstance(self.function, str) or not self.function:
            raise EngineError("SearchSpec.function must be a hex truth-table name")
        try:
            int(self.function, 16)
        except ValueError:
            raise EngineError(
                f"SearchSpec.function {self.function!r} is not a valid hexadecimal name",
            ) from None
        inputs = tuple(str(name) for name in self.inputs)
        if not inputs or len(set(inputs)) != len(inputs):
            raise EngineError("SearchSpec.inputs must be distinct, non-empty names")
        object.__setattr__(self, "inputs", inputs)
        if not isinstance(self.output_protein, str) or not self.output_protein:
            raise EngineError("SearchSpec.output_protein must be a species name")
        if str(self.library).lower() not in LIBRARY_NAMES:
            raise EngineError(
                f"SearchSpec.library {self.library!r} is unknown; available: {LIBRARY_NAMES}",
            )
        object.__setattr__(self, "library", str(self.library).lower())
        variants = tuple(frozen_overrides(variant) for variant in self.variants)
        if not variants:
            raise EngineError("SearchSpec.variants needs at least one override set")
        object.__setattr__(self, "variants", variants)
        if self.allocator not in _ALLOCATORS:
            raise EngineError(
                f"SearchSpec.allocator must be one of {_ALLOCATORS}, got {self.allocator!r}",
            )
        object.__setattr__(self, "simulator", canonical_simulator_name(self.simulator))
        for name in ("n0", "refine_step", "fixed_replicates", "top_k", "repeats",
                     "workers", "batch_size"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise EngineError(f"SearchSpec.{name} must be a positive integer")
        if self.n0 < 2:
            raise EngineError(
                "SearchSpec.n0 must be at least 2: the racing allocator's "
                "overlap test needs a variance estimate per candidate",
            )
        if self.fixed_replicates < self.n0:
            raise EngineError("SearchSpec.fixed_replicates must be >= n0")
        for name in ("max_candidates", "budget_replicates"):
            value = getattr(self, name)
            if value is not None:
                if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                    raise EngineError(f"SearchSpec.{name} must be a positive integer or None")
        if self.seed is not None:
            if isinstance(self.seed, bool) or not isinstance(self.seed, int):
                try:
                    coerced = int(self.seed)
                except (TypeError, ValueError):
                    raise EngineError("SearchSpec.seed must be an integer or None") from None
                object.__setattr__(self, "seed", coerced)
        for name in ("threshold", "fov_ud", "hold_time", "sample_interval"):
            value = float(getattr(self, name))
            object.__setattr__(self, name, value)
            if value <= 0:
                raise EngineError(f"SearchSpec.{name} must be positive")
        ci_level = float(self.ci_level)
        object.__setattr__(self, "ci_level", ci_level)
        if not 0.0 < ci_level < 1.0:
            raise EngineError("SearchSpec.ci_level must be in (0, 1)")
        if not isinstance(self.schema, int) or self.schema < 1:
            raise EngineError("SearchSpec.schema must be a positive integer")
        if self.schema > SEARCH_SPEC_SCHEMA:
            raise EngineError(
                f"SearchSpec schema {self.schema} is newer than this package "
                f"understands (max {SEARCH_SPEC_SCHEMA}); upgrade genlogic",
            )

    # -- construction ----------------------------------------------------------
    def replace(self, **changes: Any) -> "SearchSpec":
        """A copy with ``changes`` applied (re-validated and re-canonicalized)."""
        return dataclasses.replace(self, **changes)

    # -- resolution ------------------------------------------------------------
    def parts(self) -> PartsLibrary:
        """The named parts library, freshly built."""
        return resolve_library(self.library)

    def netlist(self):
        """A fresh synthesis of the target function (deterministic gate names)."""
        return synthesize_from_hex(
            self.function,
            inputs=list(self.inputs),
            name=f"search_{self.function.lower()}",
        )

    def candidates(self) -> List[PartAssignment]:
        """The enumerated candidate stream this spec describes (materialized)."""
        return list(
            enumerate_assignments(
                self.netlist(),
                self.parts(),
                output_protein=self.output_protein,
                variants=list(self.variants),
                limit=self.max_candidates,
            ),
        )

    def n_candidates(self) -> int:
        """Size of the candidate stream without materializing it."""
        total = count_assignments(
            self.netlist(),
            self.parts(),
            output_protein=self.output_protein,
            variants=list(self.variants),
        )
        if self.max_candidates is not None:
            total = min(total, self.max_candidates)
        return total

    def exhaustive_replicates(self) -> int:
        """Replicates an exhaustive fixed-N evaluation of the space costs."""
        return self.n_candidates() * self.fixed_replicates

    def total_budget(self) -> int:
        """The hard replicate cap: ``budget_replicates`` or the exhaustive total."""
        if self.budget_replicates is not None:
            return self.budget_replicates
        return self.exhaustive_replicates()

    # -- content addressing ----------------------------------------------------
    def cache_key(self) -> str:
        """Content-addressed digest of everything determining the frontier.

        Includes the model fingerprint of candidate 0 (resolved through the
        live synthesis + library code), anchoring the key to the actual model
        content the way :meth:`repro.engine.StudySpec.cache_key` does — two
        processes agree on the key exactly when they would compute the same
        frontier.  Raises :class:`~repro.errors.EngineError` without a seed.
        """
        if self.seed is None:
            raise EngineError(
                "a SearchSpec without a seed has no stable cache key (every "
                "execution draws fresh entropy); set seed= to make the search "
                "content-addressable",
            )
        from ..engine.cache import model_fingerprint
        from ..gates.circuits import build_circuit

        candidates = self.candidates()
        if not candidates:
            raise EngineError(f"search space of {self.function!r} is empty")
        anchor = build_circuit(
            self.netlist(),
            library=self.parts(),
            output_protein=self.output_protein,
            assignment=candidates[0],
        )
        payload = {
            "schema": self.schema,
            "function": self.function.lower(),
            "inputs": list(self.inputs),
            "output_protein": self.output_protein,
            "library": self.library,
            "model0": model_fingerprint(anchor.model),
            "variants": [[list(pair) for pair in variant] for variant in self.variants],
            "space": {
                "max_candidates": self.max_candidates,
                "n_candidates": len(candidates),
            },
            "allocator": {
                "name": self.allocator,
                "n0": self.n0,
                "refine_step": self.refine_step,
                "fixed_replicates": self.fixed_replicates,
                "budget_replicates": self.budget_replicates,
                "top_k": self.top_k,
                "ci_level": self.ci_level,
            },
            "protocol": {
                "hold_time": self.hold_time,
                "repeats": self.repeats,
                "simulator": self.simulator,
                "sample_interval": self.sample_interval,
                "seed": self.seed,
            },
            "analyzer": {
                "threshold": self.threshold,
                "fov_ud": self.fov_ud,
            },
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # -- serialization ---------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict (variants become ``[[[name, value], ...], ...]``)."""
        data = dataclasses.asdict(self)
        data["inputs"] = list(self.inputs)
        data["variants"] = [[list(pair) for pair in variant] for variant in self.variants]
        return data

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SearchSpec":
        """Parse a dict (e.g. a decoded request body), rejecting unknown keys."""
        if not isinstance(data, Mapping):
            raise EngineError("a SearchSpec must be a JSON object")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise EngineError(
                f"unknown SearchSpec field(s) {unknown}; known fields: {sorted(known)}",
            )
        if "function" not in data:
            raise EngineError("a SearchSpec needs a 'function' field")
        fields = dict(data)
        if "inputs" in fields:
            fields["inputs"] = tuple(fields["inputs"])
        if "variants" in fields:
            variants = fields["variants"]
            if not isinstance(variants, Sequence) or isinstance(variants, (str, bytes)):
                raise EngineError("SearchSpec.variants must be a list of override sets")
            fields["variants"] = tuple(
                tuple((str(name), float(value)) for name, value in variant)
                for variant in variants
            )
        return cls(**fields)

    @classmethod
    def from_json(cls, text: Union[str, bytes]) -> "SearchSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise EngineError(f"SearchSpec JSON is malformed: {error}") from None
        return cls.from_dict(data)
