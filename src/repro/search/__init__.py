"""Design-space search: rank every part assignment of a Boolean function.

The layered counterpart of a single replicate study.  The **enumeration**
layer (:mod:`repro.gates.assignment`) streams candidate part assignments;
the **scoring** layer (:class:`repro.analysis.CandidateScore`) aggregates
replicate analyses refinably; this package adds the **search** layer — a
canonical :class:`SearchSpec` plus a racing (successive-halving) replicate
allocator over the simulation engine — and returns a ranked, serializable
:class:`SearchFrontier`.  Entry points: :func:`run_design_search` /
:func:`arun_design_search`, the ``genlogic search`` CLI and ``POST
/v1/search`` on the HTTP service.
"""

from .engine import FrontierEntry, SearchFrontier, arun_design_search, run_design_search
from .spec import SEARCH_SPEC_SCHEMA, SearchSpec

__all__ = [
    "SEARCH_SPEC_SCHEMA",
    "SearchSpec",
    "FrontierEntry",
    "SearchFrontier",
    "run_design_search",
    "arun_design_search",
]
