"""CI smoke for the worker supervisor: kill a worker, the fabric heals.

Starts a :class:`WorkerSupervisor` owning two keyed ``genlogic worker
--listen`` processes, SIGKILLs one, asserts the supervisor restarts it, and
then runs a real ``genlogic verify --dispatch`` batch across both workers —
proving the healed, authenticated fabric serves work end to end.

Run from the repo root with ``PYTHONPATH=src python scripts/supervisor_smoke.py``.
"""

import os
import signal
import socket
import tempfile
import time

from repro.cli import main as cli_main
from repro.engine import WorkerSupervisor
from repro.engine.backoff import BackoffPolicy

KEY = "chaos-smoke-key"


def free_port_pair():
    """A base port where base and base+1 are both currently bindable."""
    for _ in range(20):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            base = probe.getsockname()[1]
        try:
            with socket.socket() as neighbour:
                neighbour.bind(("127.0.0.1", base + 1))
        except OSError:
            continue
        return base
    raise AssertionError("could not find two consecutive free ports")


def wait_until(predicate, timeout, what):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.1)
    raise AssertionError(f"timed out after {timeout}s waiting for {what}")


def main():
    base = free_port_pair()
    with tempfile.NamedTemporaryFile("w", suffix=".key", delete=False) as handle:
        handle.write(KEY + "\n")
        key_path = handle.name
    supervisor = WorkerSupervisor(
        2,
        listen_base=f"127.0.0.1:{base}",
        key=KEY,
        policy=BackoffPolicy(initial=0.1, multiplier=2.0, maximum=1.0, jitter=0.5),
        stable_after=2.0,
        poll_interval=0.1,
    )
    try:
        with supervisor:
            supervisor.wait_for_alive(2)
            victim_pid = supervisor.status()["workers"][0]["pid"]
            os.kill(victim_pid, signal.SIGKILL)

            def healed():
                status = supervisor.status()
                return status["restarts_total"] >= 1 and status["alive"] == 2

            wait_until(healed, 30.0, "the killed worker to be restarted")

            # The healed fabric must serve a real batched dispatch, with the
            # shared key authenticating every connection.
            code = cli_main(
                [
                    "verify",
                    "and",
                    "--replicates",
                    "8",
                    "--batch",
                    "4",
                    "--hold-time",
                    "80",
                    "--seed",
                    "7",
                    "--no-progress",
                    "--dispatch",
                    f"127.0.0.1:{base},127.0.0.1:{base + 1}",
                    "--key-file",
                    key_path,
                ]
            )
            assert code == 0, f"verify --dispatch exited {code} on the healed fabric"
            status = supervisor.status()
            print(
                f"supervisor smoke OK: restarts_total={status['restarts_total']}, "
                f"alive={status['alive']}, authenticated={status['authenticated']}"
            )
    finally:
        os.unlink(key_path)


if __name__ == "__main__":
    main()
