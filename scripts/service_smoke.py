"""CI smoke for ``genlogic serve``: repeat request must be a cache hit.

Starts the HTTP service over a 2-worker pool on an ephemeral loopback port,
submits one StudySpec twice, and asserts the repeat is answered from the
content-addressed cache: bit-identical result, hit visible in ``/v1/stats``,
and wall time collapsing versus the first run.

Run from the repo root with ``PYTHONPATH=src python scripts/service_smoke.py``.
"""

import http.client
import json
import re
import subprocess
import sys
import time

SPEC = {"circuit": "and", "n_replicates": 4, "seed": 11, "hold_time": 80.0}


def request(port, method, path, body=None):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=300)
    try:
        connection.request(method, path, body=None if body is None else json.dumps(body))
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def main():
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0", "--workers", "2"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        line = server.stdout.readline()
        match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
        assert match, f"expected a listening line, got {line!r}"
        port = int(match.group(1))

        status, first = request(port, "POST", "/v1/studies?wait=1", SPEC)
        assert status == 200 and first["status"] == "done", first
        assert not first["cached"], first

        start = time.monotonic()
        status, second = request(port, "POST", "/v1/studies?wait=1", SPEC)
        repeat_wall = time.monotonic() - start
        assert status == 200 and second["cached"], second
        assert second["result"] == first["result"], "cache hit must be bit-identical"
        assert repeat_wall < first["wall_seconds"], (
            f"cache hit took {repeat_wall:.3f}s vs first run {first['wall_seconds']:.3f}s"
        )

        status, stats = request(port, "GET", "/v1/stats")
        assert status == 200 and stats["cache"]["hits"] == 1, stats
        print(
            f"service smoke OK: first run {first['wall_seconds']:.3f}s, "
            f"cache hit {repeat_wall:.3f}s, cache {stats['cache']}"
        )
    finally:
        server.terminate()
        server.wait(timeout=30)


if __name__ == "__main__":
    main()
